"""Online adaptive threshold tuning: dispatch, convergence, persistence.

The online tuner only ever selects forced paths of the compiled program's
branching tree, so execution under online dispatch must stay bit-identical
to an explicit threshold assignment selecting the same code version — the
first class here checks exactly that, across execution engines.  The rest
covers the learning loop (bootstrap on untuned defaults, early-termination
censoring, convergence, the zero-work exploit path) and the crash-safe
table round trip through ``tuning/persist.py``.
"""

import json

import numpy as np
import pytest

from repro import perf
from repro.bench.datasets import table1_sizes
from repro.bench.programs.matmul import matmul_program
from repro.bench.programs.nw import nw_program
from repro.check.differential import enumerate_forced_paths
from repro.cli import _random_inputs, main
from repro.compiler import compile_program
from repro.gpu import K40, VEGA64
from repro.tuning import (
    OnlineTuner,
    TuningFileError,
    load_online_table,
    log_bucket,
    save_online_table,
    shape_key,
)

NW_D1 = table1_sizes("NW", "D1")
NW_D2 = table1_sizes("NW", "D2")


@pytest.fixture(scope="module")
def nw_if():
    return compile_program(nw_program(), "incremental")


@pytest.fixture(scope="module")
def matmul_if():
    return compile_program(matmul_program(), "incremental")


def converge(tuner, sizes, limit=200):
    """Dispatch ``sizes`` until its class converges; returns decisions."""
    decisions = []
    for _ in range(limit):
        d = tuner.dispatch(sizes)
        decisions.append(d)
        if d.converged:
            return decisions
    raise AssertionError(f"no convergence within {limit} dispatches")


class TestShapeClasses:
    def test_log_bucket(self):
        assert log_bucket(0) == 0
        assert log_bucket(1) == 1
        assert log_bucket(2**15) == 16
        assert log_bucket(2**15 - 1) == 15

    def test_shape_key_format(self, nw_if):
        key = shape_key(nw_if.shape_class(NW_D1))
        assert key and all(part.startswith("b") for part in key.split("."))

    def test_distinct_datasets_distinct_classes(self, nw_if):
        assert nw_if.shape_class(NW_D1) != nw_if.shape_class(NW_D2)

    def test_fingerprint_memoized(self, nw_if):
        perf.reset()
        nw_if._shape_memo.clear()
        nw_if.shape_class(NW_D1)
        for _ in range(5):
            nw_if.shape_class(NW_D1)
        counters = perf.snapshot()["counters"]
        assert counters["exec.dispatch"] == 6
        assert counters["exec.dispatch.memo_hits"] == 5
        assert counters["exec.dispatch.memo_misses"] == 1


class TestDispatch:
    def test_arms_are_forced_paths(self, nw_if):
        tuner = OnlineTuner(nw_if, K40)
        paths, truncated = enumerate_forced_paths(
            nw_if.branching_trees(), max_paths=256
        )
        assert not truncated and not tuner.arms_truncated
        assert tuner.arms == paths

    def test_bootstrap_runs_untuned_defaults(self, nw_if):
        tuner = OnlineTuner(nw_if, K40)
        d = tuner.dispatch(NW_D1)
        assert d.explored and d.arm == -1 and d.thresholds == {}
        assert d.cost == pytest.approx(float(nw_if.simulate(NW_D1, K40).time))

    def test_converges_to_exhaustive_optimum(self, nw_if):
        tuner = OnlineTuner(nw_if, K40)
        converge(tuner, NW_D1)
        frozen = tuner.converged_classes()[shape_key(nw_if.shape_class(NW_D1))]
        best = min(
            float(nw_if.simulate(NW_D1, K40, thresholds=p or None).time)
            for p in tuner.arms
        )
        got = float(nw_if.simulate(NW_D1, K40, thresholds=frozen or None).time)
        assert got == pytest.approx(best)

    def test_exploit_path_does_no_simulation(self, nw_if, monkeypatch):
        tuner = OnlineTuner(nw_if, K40)
        converge(tuner, NW_D1)

        def boom(*a, **kw):
            raise AssertionError("exploit path must not simulate")

        monkeypatch.setattr(tuner.compiled, "simulate", boom)
        d = tuner.dispatch(NW_D1)
        assert not d.explored and d.converged and d.cost is None

    def test_exploration_cost_is_bounded(self, nw_if):
        """Early termination: no explored item may cost more than
        ``(timeout_factor + 1)`` incumbents, and the incumbent never
        exceeds the untuned default."""
        tuner = OnlineTuner(nw_if, K40)
        decisions = converge(tuner, NW_D1)
        default = float(nw_if.simulate(NW_D1, K40).time)
        cap = (tuner.timeout_factor + 1) * default
        assert any(d.censored for d in decisions[1:])
        for d in decisions:
            assert d.cost <= cap * (1 + 1e-12)

    def test_classes_learn_independently(self, nw_if):
        tuner = OnlineTuner(nw_if, K40)
        converge(tuner, NW_D1)
        d = tuner.dispatch(NW_D2)  # new class starts exploring from scratch
        assert d.explored and d.arm == -1
        assert len(tuner.classes_doc()) == 2

    def test_single_version_program_converges_immediately(self):
        """A guard-free (moderate-mode) program has the one arm ``{}``:
        its first item both seeds the default and freezes the winner."""
        cp = compile_program(matmul_program(), "moderate")
        tuner = OnlineTuner(cp, K40)
        assert tuner.arms == [{}]
        d = tuner.dispatch({"n": 8, "m": 8})
        assert d.converged and d.arm == 0 and d.thresholds == {}
        assert tuner.total_observations() == 1

    def test_rejects_bad_timeout_factor(self, nw_if):
        with pytest.raises(ValueError, match="timeout_factor"):
            OnlineTuner(nw_if, K40, timeout_factor=1.0)


class TestBitIdentity:
    @pytest.mark.parametrize("engine", ["scalar", "vector", "codegen"])
    def test_online_run_matches_explicit_thresholds(self, matmul_if, engine):
        """Every online decision is a forced path of the same branching
        tree, so outputs are bit-identical to passing those thresholds
        explicitly — on every execution engine."""
        tuner = OnlineTuner(matmul_if, K40)
        sizes = {"n": 3, "m": 4}
        inputs = _random_inputs(matmul_if.prog, sizes, seed=7)
        for _ in range(4):
            got = matmul_if.run(inputs, engine=engine, online=tuner)
            want = matmul_if.run(
                inputs, thresholds=tuner.last_decision.thresholds or None,
                engine=engine,
            )
            for g, w in zip(got, want):
                assert np.array_equal(np.asarray(g), np.asarray(w))

    def test_online_and_thresholds_mutually_exclusive(self, matmul_if):
        tuner = OnlineTuner(matmul_if, K40)
        inputs = _random_inputs(matmul_if.prog, {"n": 2, "m": 2}, seed=0)
        with pytest.raises(ValueError, match="not both"):
            matmul_if.run(inputs, thresholds={"t0": 1}, online=tuner)


class TestPersistence:
    def test_round_trip_restores_state(self, nw_if, tmp_path):
        path = str(tmp_path / "nw.online.json")
        tuner = OnlineTuner(nw_if, K40)
        converge(tuner, NW_D1)
        tuner.dispatch(NW_D2)
        tuner.save(path)

        fresh = OnlineTuner(nw_if, K40)
        assert fresh.load(path) == tuner.total_observations()
        assert fresh.classes_doc() == tuner.classes_doc()
        assert fresh.converged_classes() == tuner.converged_classes()
        # a restored converged class exploits without re-learning
        assert not fresh.dispatch(NW_D1).explored

    def test_resume_is_monotone(self, nw_if, tmp_path):
        """The chaos CI leg's invariant: reload never loses acknowledged
        observations, and continuing only adds to them."""
        path = str(tmp_path / "nw.online.json")
        tuner = OnlineTuner(nw_if, K40, table_path=path)
        for _ in range(3):
            tuner.dispatch(NW_D1)
        before = tuner.total_observations()

        resumed = OnlineTuner(nw_if, K40, table_path=path)
        assert resumed.load(path) == before
        resumed.dispatch(NW_D1)
        assert resumed.total_observations() == before + 1

    def test_every_observation_is_on_disk(self, nw_if, tmp_path):
        """With ``table_path`` set, the table on disk always reflects the
        decision just returned (crash-safety: acknowledged == persisted)."""
        path = str(tmp_path / "nw.online.json")
        tuner = OnlineTuner(nw_if, K40, table_path=path)
        for i in range(1, 4):
            tuner.dispatch(NW_D1)
            fresh = OnlineTuner(nw_if, K40)
            assert fresh.load(path) == i

    def test_rejects_other_program(self, nw_if, matmul_if, tmp_path):
        path = str(tmp_path / "nw.online.json")
        tuner = OnlineTuner(nw_if, K40)
        tuner.dispatch(NW_D1)
        save_online_table(path, tuner)
        with pytest.raises(TuningFileError, match="program"):
            load_online_table(path, matmul_if)

    def test_rejects_other_device(self, nw_if, tmp_path):
        path = str(tmp_path / "nw.online.json")
        save_online_table(path, OnlineTuner(nw_if, K40))
        with pytest.raises(TuningFileError, match="device"):
            OnlineTuner(nw_if, VEGA64).load(path)

    def test_rejects_fusion_mismatch(self, nw_if, tmp_path):
        path = tmp_path / "nw.online.json"
        save_online_table(str(path), OnlineTuner(nw_if, K40))
        doc = json.loads(path.read_text())
        doc["fusion"] = "greedy"
        path.write_text(json.dumps(doc))
        with pytest.raises(TuningFileError, match="fusion mode"):
            load_online_table(str(path), nw_if)

    def test_rejects_changed_branching_tree(self, nw_if, tmp_path):
        path = tmp_path / "nw.online.json"
        save_online_table(str(path), OnlineTuner(nw_if, K40))
        doc = json.loads(path.read_text())
        doc["branching_tree"] = "0" * 64
        path.write_text(json.dumps(doc))
        with pytest.raises(TuningFileError, match="branching tree"):
            load_online_table(str(path), nw_if)

    def test_rejects_unsupported_format(self, nw_if, tmp_path):
        path = tmp_path / "nw.online.json"
        save_online_table(str(path), OnlineTuner(nw_if, K40))
        doc = json.loads(path.read_text())
        doc["format"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(TuningFileError, match="format"):
            load_online_table(str(path), nw_if)

    def test_rejects_mismatched_arms(self, nw_if, tmp_path):
        path = tmp_path / "nw.online.json"
        save_online_table(str(path), OnlineTuner(nw_if, K40))
        doc = json.loads(path.read_text())
        doc["arms"] = doc["arms"][:-1]  # a path disappeared
        path.write_text(json.dumps(doc))
        with pytest.raises(TuningFileError, match="arms"):
            OnlineTuner(nw_if, K40).load(str(path))

    def test_rejects_malformed_classes(self, nw_if, tmp_path):
        path = tmp_path / "nw.online.json"
        tuner = OnlineTuner(nw_if, K40)
        tuner.dispatch(NW_D1)
        save_online_table(str(path), tuner)
        doc = json.loads(path.read_text())
        for cdoc in doc["classes"].values():
            del cdoc["plays"]
        path.write_text(json.dumps(doc))
        with pytest.raises(TuningFileError, match="malformed"):
            load_online_table(str(path), nw_if)

    def test_rejects_non_json(self, nw_if, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json {")
        with pytest.raises(TuningFileError, match="not an online table"):
            load_online_table(str(path), nw_if)


class TestCLI:
    def test_online_flag_round_trips(self, capsys, tmp_path):
        path = str(tmp_path / "t.online.json")
        argv = ["run", "matmul", "--size", "n=3,m=4", "--online", path]
        assert main(list(argv)) == 0
        out = capsys.readouterr().out
        assert "online:" in out and "observations=1" in out
        assert main(list(argv)) == 0
        assert "observations=2" in capsys.readouterr().out

    def test_online_excludes_explicit_thresholds(self, capsys, tmp_path):
        code = main([
            "run", "matmul", "--size", "n=2,m=2",
            "--online", str(tmp_path / "t.json"), "--threshold", "t0=1",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")

    def test_stale_table_is_an_error(self, capsys, tmp_path):
        path = tmp_path / "t.online.json"
        argv = ["run", "matmul", "--size", "n=2,m=2", "--online", str(path)]
        assert main(list(argv)) == 0
        capsys.readouterr()
        doc = json.loads(path.read_text())
        doc["branching_tree"] = "0" * 64
        path.write_text(json.dumps(doc))
        assert main(list(argv)) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:") and "branching tree" in err
        assert len(err.strip().splitlines()) == 1
