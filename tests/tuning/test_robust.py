"""Hardened tuning runtime: retries, quarantine, watchdog, deadlines."""

import pytest

from repro import faults, perf
from repro.compiler import compile_program
from repro.faults import FaultPlan, FaultRule, default_chaos_plan
from repro.gpu import K40
from repro.tuning.tuner import PENALTY_COST, Autotuner

from repro.bench.programs.matmul import matmul_program, matmul_sizes


@pytest.fixture(scope="module")
def matmul_if():
    return compile_program(matmul_program(), "incremental")


@pytest.fixture(scope="module")
def train():
    return [matmul_sizes(e, 20) for e in (2, 6, 10)]


def assert_same_result(a, b):
    assert a.best_thresholds == b.best_thresholds
    assert a.best_cost == b.best_cost
    assert a.proposals == b.proposals
    assert a.history == b.history
    assert a.full_history == b.full_history


class TestRecoverableFaults:
    def test_bounded_transients_converge_to_fault_free(self, matmul_if, train):
        baseline = Autotuner(matmul_if, train, K40, seed=3).tune(
            max_proposals=40
        )
        with faults.injected(default_chaos_plan(seed=11)):
            chaotic = Autotuner(matmul_if, train, K40, seed=3).tune(
                max_proposals=40
            )
        assert_same_result(baseline, chaotic)
        assert chaotic.quarantined == []

    def test_retries_are_counted(self, matmul_if, train):
        plan = FaultPlan(
            seed=0, retries=8,
            rules=(FaultRule(site="sim.kernel", kind="launch", p=1.0,
                             max_fires=4),),
        )
        with faults.injected(plan):
            result = Autotuner(matmul_if, train, K40, seed=3).tune(
                max_proposals=10
            )
        assert result.retries >= 4
        # retries are reported via perf counters and the result object,
        # never telemetry (recovered-chaos telemetry must stay identical
        # to a fault-free run's)
        assert "retries" not in result.telemetry()

    def test_retry_budget_exhaustion_quarantines(self, matmul_if, train):
        # an unbounded always-fire transient rule can never be out-waited
        plan = FaultPlan(
            seed=0, retries=2,
            rules=(FaultRule(site="sim.kernel", kind="launch", p=1.0),),
        )
        with faults.injected(plan):
            result = Autotuner(matmul_if, train, K40, seed=3).tune(
                max_proposals=5
            )
        assert result.best_cost == PENALTY_COST
        assert result.quarantined
        assert "budget exhausted" in result.quarantined[0][1]

    def test_telemetry_json_safe_under_total_failure(self, matmul_if, train):
        import json

        plan = FaultPlan(
            seed=0, retries=0,
            rules=(FaultRule(site="sim.kernel", kind="oom", p=1.0),),
        )
        with faults.injected(plan):
            result = Autotuner(matmul_if, train, K40, seed=3).tune(
                max_proposals=4
            )
        doc = result.telemetry()
        assert doc["best_cost"] is None  # inf is not valid JSON
        assert doc["quarantined"]
        json.dumps(doc)  # strict-JSON serialisable


class TestQuarantine:
    def test_deterministic_fault_quarantines_without_retry(
        self, matmul_if, train
    ):
        plan = FaultPlan(
            seed=0, retries=8,
            rules=(FaultRule(site="sim.kernel", kind="oom", p=1.0),),
        )
        perf.reset()
        with faults.injected(plan):
            result = Autotuner(matmul_if, train, K40, seed=3).tune(
                max_proposals=6
            )
        assert result.retries == 0
        assert result.quarantined
        assert perf.counters().get("tuner.retries", 0) == 0
        assert perf.counters()["tuner.quarantined"] == len(result.quarantined)

    def test_quarantined_config_not_reevaluated(self, matmul_if, train):
        tuner = Autotuner(matmul_if, train, K40, seed=3)
        cfg = tuner.space.default_config()
        tuner.preload_measurements(
            [{} for _ in train], quarantined=[(cfg, "known bad")]
        )
        out, failure = tuner._eval_robust(cfg, None, 8, 0.0)
        assert out is None and failure == "known bad"
        assert tuner.simulations == 0


class TestWatchdog:
    def test_timeout_is_transient_and_recovers(self, matmul_if, train):
        # first proposal sleeps past the deadline; the retry draws no
        # delay (the rule's budget is spent) and succeeds
        plan = FaultPlan(
            seed=0, retries=8,
            rules=(FaultRule(site="sim.kernel", kind="delay", at=(0,),
                             delay_s=0.5, max_fires=1),),
        )
        baseline = Autotuner(matmul_if, train, K40, seed=3).tune(
            max_proposals=8
        )
        with faults.injected(plan):
            timed = Autotuner(matmul_if, train, K40, seed=3).tune(
                max_proposals=8, proposal_timeout_s=0.2
            )
        assert timed.retries >= 1
        assert timed.best_thresholds == baseline.best_thresholds
        assert timed.best_cost == baseline.best_cost

    def test_timeout_alone_forces_robust_path(self, matmul_if, train):
        # proposal_timeout_s without any fault plan must not change results
        plain = Autotuner(matmul_if, train, K40, seed=3).tune(max_proposals=30)
        timed = Autotuner(matmul_if, train, K40, seed=3).tune(
            max_proposals=30, proposal_timeout_s=60.0
        )
        assert_same_result(plain, timed)


class TestDeadlines:
    def test_zero_budget_falls_back_to_default(self, matmul_if, train):
        result = Autotuner(matmul_if, train, K40, seed=3).tune(
            max_proposals=50, time_budget_s=0
        )
        assert result.proposals == 1
        assert result.best_thresholds == Autotuner(
            matmul_if, train, K40
        ).space.default_config()
        assert result.best_cost < float("inf")

    def test_deadline_shorter_than_one_proposal(self, matmul_if, train):
        result = Autotuner(matmul_if, train, K40, seed=3).tune(
            max_proposals=50, time_budget_s=1e-9
        )
        assert result.proposals == 1
        assert result.best_cost < float("inf")

    def test_deadline_expiring_mid_run_ends_after_batch(
        self, matmul_if, train
    ):
        # a delay fault at the second batch boundary pushes past the
        # budget: the search stops after that batch instead of running
        # all 100 proposals
        plan = FaultPlan(
            seed=0,
            rules=(FaultRule(site="tuner.batch", kind="delay", at=(1,),
                             delay_s=0.3),),
        )
        with faults.injected(plan):
            result = Autotuner(matmul_if, train, K40, seed=3).tune(
                max_proposals=100, batch_size=4, time_budget_s=0.25
            )
        assert result.proposals < 100
        assert result.proposals % 4 == 0  # whole batches only
        assert result.best_cost < float("inf")


class TestReplay:
    def test_preloaded_measurements_replay_bit_identically(
        self, matmul_if, train
    ):
        first = Autotuner(matmul_if, train, K40, seed=3, noise=0.03)
        a = first.tune(max_proposals=40)
        second = Autotuner(matmul_if, train, K40, seed=3, noise=0.03)
        second.preload_measurements(first.measurements())
        # run the replay under an always-fail plan: if anything were
        # re-simulated (instead of replayed from the recording) it would
        # fault and quarantine, so bit-identity proves pure replay
        plan = FaultPlan(
            seed=0,
            rules=(FaultRule(site="sim.kernel", kind="oom", p=1.0),),
        )
        with faults.injected(plan):
            b = second.tune(max_proposals=40)
        assert_same_result(a, b)
        assert b.quarantined == []
        assert second.simulations == first.simulations  # replayed canonically
