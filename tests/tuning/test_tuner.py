"""Autotuner tests: caching, search, and the paper's qualitative claims."""

import pytest

from repro.compiler import compile_program
from repro.gpu import K40, VEGA64
from repro.tuning import (
    Autotuner,
    candidate_values,
    exhaustive_tune,
    path_signature,
)

from repro.bench.programs.locvolcalib import locvolcalib_program, locvolcalib_sizes
from repro.bench.programs.matmul import matmul_program, matmul_sizes


@pytest.fixture(scope="module")
def matmul_if():
    return compile_program(matmul_program(), "incremental")


@pytest.fixture(scope="module")
def train20():
    return [matmul_sizes(e, 20) for e in range(11)]


class TestDuplicatePathCache:
    def test_cache_hits_dominate(self, matmul_if, train20):
        """§4.2: duplicate parameter assignments resolve without re-running."""
        tuner = Autotuner(matmul_if, train20, K40, seed=0)
        tuner.tune(max_proposals=200)
        assert tuner.cache_hits > tuner.simulations

    def test_simulations_bounded_by_distinct_paths(self, matmul_if, train20):
        tuner = Autotuner(matmul_if, train20, K40, seed=0)
        tuner.tune(max_proposals=500)
        distinct = sum(len(c) for c in tuner._cache)
        assert tuner.simulations == distinct

    def test_same_path_same_cost(self, matmul_if, train20):
        tuner = Autotuner(matmul_if, train20, K40)
        a = tuner.measure({t: 5 for t in matmul_if.thresholds()})
        b = tuner.measure({t: 6 for t in matmul_if.thresholds()})
        # both assignments select the all-true path (pars >= 6 here)
        sig_a = path_signature(
            matmul_if.body, train20[3], {t: 5 for t in matmul_if.thresholds()},
            device=K40,
        )
        sig_b = path_signature(
            matmul_if.body, train20[3], {t: 6 for t in matmul_if.thresholds()},
            device=K40,
        )
        if sig_a == sig_b:
            assert a == b


class TestTuningQuality:
    def test_tuned_at_least_as_good_as_default(self, matmul_if, train20):
        tuner = Autotuner(matmul_if, train20, K40, seed=1)
        res = tuner.tune(max_proposals=150)
        default_cost = tuner.measure(tuner.space.default_config())
        assert res.best_cost <= default_cost

    def test_exhaustive_finds_global_optimum_of_candidates(
        self, matmul_if, train20
    ):
        res = exhaustive_tune(matmul_if, train20, K40)
        stoch = Autotuner(matmul_if, train20, K40, seed=2).tune(max_proposals=400)
        assert res.best_cost <= stoch.best_cost * 1.0001

    def test_tuned_beats_both_extremes_on_train(self, matmul_if, train20):
        """AIF ≤ min(MF-like, FF-like): the whole point of the paper."""
        mf = compile_program(matmul_program(), "moderate")
        ff = compile_program(matmul_program(), "full")
        res = exhaustive_tune(matmul_if, train20, K40)
        t_mf = sum(mf.simulate(s, K40).time for s in train20)
        t_ff = sum(ff.simulate(s, K40).time for s in train20)
        assert res.best_cost <= min(t_mf, t_ff) * 1.05

    def test_fig2_transfer_k20_to_k25(self, matmul_if, train20):
        """Thresholds tuned on k=20 work on k=25 (paper Fig. 2)."""
        th = exhaustive_tune(matmul_if, train20, K40).best_thresholds
        mf = compile_program(matmul_program(), "moderate")
        ff = compile_program(matmul_program(), "full")
        for e in range(11):
            s = matmul_sizes(e, 25)
            t_aif = matmul_if.simulate(s, K40, thresholds=th).time
            t_best = min(mf.simulate(s, K40).time, ff.simulate(s, K40).time)
            assert t_aif <= t_best * 1.6, f"transfer failed at e={e}"

    def test_device_specific_thresholds_differ(self):
        """§5.1: parameters optimal for one device are not for the other."""
        cp = compile_program(locvolcalib_program(), "incremental")
        datasets = [locvolcalib_sizes(n) for n in ("small", "medium", "large")]
        th_k40 = exhaustive_tune(cp, datasets, K40, max_configs=10**6)
        th_vega = exhaustive_tune(cp, datasets, VEGA64, max_configs=10**6)
        sig_k40 = [
            path_signature(cp.body, s, th_k40.best_thresholds, device=K40)
            for s in datasets
        ]
        sig_vega = [
            path_signature(cp.body, s, th_vega.best_thresholds, device=VEGA64)
            for s in datasets
        ]
        assert sig_k40 != sig_vega


class TestCandidates:
    def test_candidate_values_cover_boundaries(self, matmul_if, train20):
        cands = candidate_values(matmul_if, train20)
        assert set(cands) == set(matmul_if.thresholds())
        for vals in cands.values():
            assert vals[0] == 1
            assert vals[-1] == 2**30

    def test_exhaustive_respects_cap(self, matmul_if, train20):
        with pytest.raises(ValueError):
            exhaustive_tune(matmul_if, train20, K40, max_configs=2)


class TestCostFunctions:
    def test_custom_cost_fn(self, matmul_if, train20):
        """§4.2: 'a different measure could easily be employed'."""
        worst = Autotuner(matmul_if, train20, K40, cost_fn=max)
        res = worst.tune(max_proposals=100)
        assert res.best_cost > 0

    def test_weighted_cost_fn(self, matmul_if, train20):
        weights = [2.0] + [1.0] * (len(train20) - 1)

        def weighted(times):
            return sum(w * t for w, t in zip(weights, times))

        tuner = Autotuner(matmul_if, train20, K40, cost_fn=weighted)
        res = tuner.tune(max_proposals=100)
        assert res.best_cost > 0


class TestMeasurementNoise:
    """The paper's runs have up to 3% stddev; tuning must be robust to it."""

    def test_noisy_tuning_still_near_optimal(self, matmul_if, train20):
        clean = exhaustive_tune(matmul_if, train20, K40)
        noisy = Autotuner(matmul_if, train20, K40, seed=3, noise=0.03)
        res = noisy.tune(max_proposals=300)
        # evaluate the noisy result with a clean tuner
        clean_eval = Autotuner(matmul_if, train20, K40)
        assert clean_eval.measure(res.best_thresholds) <= clean.best_cost * 1.5

    def test_noise_reproducible_with_seed(self, matmul_if, train20):
        a = Autotuner(matmul_if, train20, K40, seed=5, noise=0.03)
        b = Autotuner(matmul_if, train20, K40, seed=5, noise=0.03)
        cfg = {t: 2**15 for t in matmul_if.thresholds()}
        assert a.measure(cfg) == b.measure(cfg)

    def test_zero_noise_is_deterministic_truth(self, matmul_if, train20):
        a = Autotuner(matmul_if, train20, K40, seed=1, noise=0.0)
        b = Autotuner(matmul_if, train20, K40, seed=99, noise=0.0)
        cfg = {t: 2**15 for t in matmul_if.thresholds()}
        assert a.measure(cfg) == b.measure(cfg)


class TestTimeBudget:
    """§5.1: 'We let the autotuner run for 20 minutes per benchmark'."""

    def test_budget_caps_proposals(self, matmul_if, train20):
        tuner = Autotuner(matmul_if, train20, K40, seed=0)
        res = tuner.tune(max_proposals=10**6, time_budget_s=0.5)
        assert res.proposals < 10**6

    def test_zero_budget_still_returns_a_config(self, matmul_if, train20):
        tuner = Autotuner(matmul_if, train20, K40, seed=0)
        res = tuner.tune(max_proposals=100, time_budget_s=1e-9)
        assert res.best_thresholds  # falls back to the 2^15 defaults


class TestTuningFiles:
    """Persistence of tuned thresholds (the analogue of .tuning files)."""

    def test_roundtrip(self, matmul_if, train20, tmp_path):
        from repro.tuning import load_thresholds, save_thresholds

        res = exhaustive_tune(matmul_if, train20, K40)
        path = tmp_path / "matmul.tuning"
        save_thresholds(str(path), matmul_if, res.best_thresholds, device="K40")
        loaded = load_thresholds(str(path), matmul_if)
        assert loaded == res.best_thresholds

    def test_rejects_wrong_program(self, matmul_if, tmp_path):
        from repro.tuning import (
            TuningFileError,
            load_thresholds,
            save_thresholds,
        )

        path = tmp_path / "x.tuning"
        save_thresholds(str(path), matmul_if, {"t0": 5})
        other = compile_program(locvolcalib_program(), "incremental")
        with pytest.raises(TuningFileError):
            load_thresholds(str(path), other)

    def test_rejects_unknown_threshold_on_save(self, matmul_if, tmp_path):
        from repro.tuning import TuningFileError, save_thresholds

        with pytest.raises(TuningFileError):
            save_thresholds(
                str(tmp_path / "x.tuning"), matmul_if, {"nope": 1}
            )

    def test_rejects_garbage_file(self, matmul_if, tmp_path):
        from repro.tuning import TuningFileError, load_thresholds

        path = tmp_path / "junk.tuning"
        path.write_text("not json")
        with pytest.raises(TuningFileError):
            load_thresholds(str(path), matmul_if)

    def test_cli_tune_output_then_simulate(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "mm.tuning"
        main([
            "tune", "matmul", "--dataset", "n=4,m=65536",
            "--dataset", "n=1024,m=32", "--technique", "exhaustive",
            "--output", str(path),
        ])
        assert path.exists()
        capsys.readouterr()
        main([
            "simulate", "matmul", "--size", "n=1024,m=32",
            "--tuning", str(path),
        ])
        out = capsys.readouterr().out
        assert "ms" in out


class TestAccounting:
    """Deadline handling and result bookkeeping in Autotuner.tune."""

    def test_deadline_checked_after_measure(self, matmul_if, train20):
        """A budget that expires during the first measurement must stop the
        search after that batch, not start another proposal round."""
        tuner = Autotuner(matmul_if, train20, K40, seed=0)
        res = tuner.tune(max_proposals=10**6, time_budget_s=1e-9)
        # the first round's deadline check (before proposing) passes at
        # t=0; the post-measure check then ends the search immediately
        assert res.proposals <= 1

    def test_zero_budget_fallback_is_accounted(self, matmul_if, train20):
        tuner = Autotuner(matmul_if, train20, K40, seed=0)
        res = tuner.tune(max_proposals=100, time_budget_s=1e-9)
        assert res.best_thresholds == tuner.space.default_config()
        # the fallback default measurement counts like any other proposal
        assert res.proposals >= 1
        assert len(res.full_history) == res.proposals
        assert res.full_history[-1] == (res.best_thresholds, res.best_cost)
        assert res.history  # and appears on the improvement curve

    def test_full_history_records_every_proposal(self, matmul_if, train20):
        tuner = Autotuner(matmul_if, train20, K40, seed=4)
        res = tuner.tune(max_proposals=80)
        assert len(res.full_history) == res.proposals == 80
        assert min(c for _, c in res.full_history) == res.best_cost
        # history is the improving subsequence of full_history
        running = float("inf")
        improvements = []
        for n, (_, c) in enumerate(res.full_history, start=1):
            if c < running:
                running = c
                improvements.append((n, c))
        assert improvements == res.history

    def test_full_history_configs_are_copies(self, matmul_if, train20):
        tuner = Autotuner(matmul_if, train20, K40, seed=4)
        res = tuner.tune(max_proposals=20)
        cfg, _ = res.full_history[0]
        cfg["tampered"] = 1
        assert "tampered" not in res.best_thresholds


class TestBranchingTreeHash:
    """Tuning files are invalidated when the branching tree changes."""

    def test_hash_stable_for_same_compilation(self, matmul_if):
        from repro.tuning import branching_tree_hash

        assert branching_tree_hash(matmul_if) == branching_tree_hash(matmul_if)

    def test_roundtrip_with_hash(self, matmul_if, train20, tmp_path):
        import json

        from repro.tuning import branching_tree_hash, load_thresholds, save_thresholds

        res = exhaustive_tune(matmul_if, train20, K40)
        path = tmp_path / "mm.tuning"
        save_thresholds(str(path), matmul_if, res.best_thresholds)
        doc = json.loads(path.read_text())
        assert doc["branching_tree"] == branching_tree_hash(matmul_if)
        assert load_thresholds(str(path), matmul_if) == res.best_thresholds

    def test_rejects_stale_tree(self, matmul_if, tmp_path):
        import json

        from repro.tuning import TuningFileError, load_thresholds, save_thresholds

        path = tmp_path / "mm.tuning"
        cfg = {t: 5 for t in matmul_if.thresholds()}
        save_thresholds(str(path), matmul_if, cfg)
        doc = json.loads(path.read_text())
        doc["branching_tree"] = "0" * 64  # a recompile changed the tree
        path.write_text(json.dumps(doc))
        with pytest.raises(TuningFileError, match="branching tree"):
            load_thresholds(str(path), matmul_if)

    def test_tolerates_files_without_hash(self, matmul_if, tmp_path):
        """Pre-hash tuning files still load (the field is optional)."""
        import json

        from repro.tuning import load_thresholds, save_thresholds

        path = tmp_path / "mm.tuning"
        cfg = {t: 5 for t in matmul_if.thresholds()}
        save_thresholds(str(path), matmul_if, cfg)
        doc = json.loads(path.read_text())
        del doc["branching_tree"]
        path.write_text(json.dumps(doc))
        assert load_thresholds(str(path), matmul_if) == cfg
