"""Parallel proposal evaluation: deterministic, identical to serial runs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.programs.matmul import matmul_program, matmul_sizes
from repro.compiler import compile_program
from repro.gpu import K40
from repro.tuning import Autotuner


@pytest.fixture(scope="module")
def matmul_if():
    return compile_program(matmul_program(), "incremental")


@pytest.fixture(scope="module")
def train():
    return [matmul_sizes(e, 20) for e in range(0, 11, 2)]


def _tune(cp, datasets, *, seed, noise=0.0, workers=1, batch_size=1, n=60):
    tuner = Autotuner(cp, datasets, K40, seed=seed, noise=noise)
    return tuner.tune(max_proposals=n, workers=workers, batch_size=batch_size)


def _assert_same(a, b):
    assert a.best_thresholds == b.best_thresholds
    assert a.best_cost == b.best_cost
    assert a.proposals == b.proposals
    assert a.simulations == b.simulations
    assert a.cache_hits == b.cache_hits
    assert a.history == b.history
    assert a.full_history == b.full_history


def test_parallel_equals_serial(matmul_if, train):
    serial = _tune(matmul_if, train, seed=0, batch_size=4)
    parallel = _tune(matmul_if, train, seed=0, workers=3, batch_size=4)
    _assert_same(serial, parallel)


def test_parallel_equals_serial_with_noise(matmul_if, train):
    serial = _tune(matmul_if, train, seed=7, noise=0.03, batch_size=5)
    parallel = _tune(matmul_if, train, seed=7, noise=0.03, workers=2, batch_size=5)
    _assert_same(serial, parallel)


def test_worker_count_does_not_change_results(matmul_if, train):
    two = _tune(matmul_if, train, seed=1, workers=2, batch_size=6, n=36)
    four = _tune(matmul_if, train, seed=1, workers=4, batch_size=6, n=36)
    _assert_same(two, four)


def test_batching_alone_preserves_classic_results(matmul_if, train):
    """batch_size=1 (any workers) reproduces the unbatched serial search."""
    classic = _tune(matmul_if, train, seed=3)
    batched = _tune(matmul_if, train, seed=3, workers=2, batch_size=1)
    _assert_same(classic, batched)


def test_parallel_respects_max_proposals(matmul_if, train):
    res = _tune(matmul_if, train, seed=0, workers=2, batch_size=7, n=30)
    assert res.proposals == 30
    assert len(res.full_history) == 30


@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    noise=st.sampled_from([0.0, 0.01, 0.03]),
    batch_size=st.integers(min_value=1, max_value=6),
)
def test_parallel_reproduces_serial_best(seed, noise, batch_size):
    cp = compile_program(matmul_program(), "incremental")
    datasets = [matmul_sizes(e, 20) for e in (1, 5, 9)]
    serial = _tune(cp, datasets, seed=seed, noise=noise, batch_size=batch_size, n=24)
    parallel = _tune(
        cp, datasets, seed=seed, noise=noise, workers=2, batch_size=batch_size, n=24
    )
    assert serial.best_thresholds == parallel.best_thresholds
    assert serial.best_cost == parallel.best_cost
    assert serial.full_history == parallel.full_history
