"""Parallel proposal evaluation: deterministic, identical to serial runs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.bench.programs.matmul import matmul_program, matmul_sizes
from repro.compiler import compile_program
from repro.gpu import K40
from repro.tuning import Autotuner
from repro.tuning.parallel import BatchExecutor


@pytest.fixture(scope="module")
def matmul_if():
    return compile_program(matmul_program(), "incremental")


@pytest.fixture(scope="module")
def train():
    return [matmul_sizes(e, 20) for e in range(0, 11, 2)]


def _tune(cp, datasets, *, seed, noise=0.0, workers=1, batch_size=1, n=60):
    tuner = Autotuner(cp, datasets, K40, seed=seed, noise=noise)
    return tuner.tune(max_proposals=n, workers=workers, batch_size=batch_size)


def _assert_same(a, b):
    assert a.best_thresholds == b.best_thresholds
    assert a.best_cost == b.best_cost
    assert a.proposals == b.proposals
    assert a.simulations == b.simulations
    assert a.cache_hits == b.cache_hits
    assert a.history == b.history
    assert a.full_history == b.full_history


def test_parallel_equals_serial(matmul_if, train):
    serial = _tune(matmul_if, train, seed=0, batch_size=4)
    parallel = _tune(matmul_if, train, seed=0, workers=3, batch_size=4)
    _assert_same(serial, parallel)
    assert serial.path_counts == parallel.path_counts


class TestWorkersValidation:
    """BatchExecutor used to silently coerce workers with max(2, N)."""

    @pytest.mark.parametrize("workers", [1, 0, -3])
    def test_rejects_fewer_than_two_workers(self, matmul_if, train, workers):
        tuner = Autotuner(matmul_if, train, K40, seed=0)
        with pytest.raises(ValueError, match="at least 2 workers"):
            BatchExecutor(tuner, workers)

    def test_close_is_deterministic_and_idempotent(self, matmul_if, train):
        tuner = Autotuner(matmul_if, train, K40, seed=0)
        ex = BatchExecutor(tuner, 2)
        ex.close()
        ex.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            ex.evaluate([tuner.space.default_config()])

    def test_context_manager(self, matmul_if, train):
        tuner = Autotuner(matmul_if, train, K40, seed=0)
        with BatchExecutor(tuner, 2) as ex:
            out = ex.evaluate([tuner.space.default_config()])
            assert len(out) == 1
        assert ex._pool is None


class TestWorkerPerfMerge:
    """Counters incremented in worker processes must reach the coordinator
    (they were lost entirely before), and the tuner-layer accounting must
    be bit-identical to a serial run."""

    CANONICAL = (
        "tuner.simulations",
        "tuner.path_cache.hits",
        "tuner.path_cache.misses",
        "signature.cache_hits",
        "signature.cache_misses",
    )

    def _snapshot_tune(self, workers, n=36):
        perf.reset()
        perf.clear_caches()
        cp = compile_program(matmul_program(), "incremental")
        datasets = [matmul_sizes(e, 20) for e in range(0, 11, 2)]
        tuner = Autotuner(cp, datasets, K40, seed=0)
        res = tuner.tune(max_proposals=n, workers=workers, batch_size=6)
        return res, perf.snapshot()["counters"]

    def test_canonical_counters_equal_serial(self):
        serial_res, serial = self._snapshot_tune(1)
        parallel_res, parallel = self._snapshot_tune(4)
        assert serial_res.full_history == parallel_res.full_history
        for name in self.CANONICAL:
            assert serial.get(name, 0) == parallel.get(name, 0), name

    def test_worker_gpu_layer_counters_reach_coordinator(self):
        _, serial = self._snapshot_tune(1)
        _, parallel = self._snapshot_tune(2)
        # per-process layers report at least the serial work (each worker
        # re-misses kernels its siblings priced; see docs/performance.md)
        assert parallel.get("kernel_cache.misses", 0) >= serial["kernel_cache.misses"]
        assert parallel.get("sim_memo.misses", 0) >= serial["sim_memo.misses"]
        assert parallel.get("tuner.parallel_batches", 0) > 0

    def test_worker_timers_reach_coordinator(self):
        perf.reset()
        perf.clear_caches()
        cp = compile_program(matmul_program(), "incremental")
        tuner = Autotuner(cp, [matmul_sizes(4, 20)], K40, seed=0)
        tuner.tune(max_proposals=12, workers=2, batch_size=6)
        assert perf.timers().get("simulate", 0.0) > 0.0


def test_parallel_equals_serial_with_noise(matmul_if, train):
    serial = _tune(matmul_if, train, seed=7, noise=0.03, batch_size=5)
    parallel = _tune(matmul_if, train, seed=7, noise=0.03, workers=2, batch_size=5)
    _assert_same(serial, parallel)


def test_worker_count_does_not_change_results(matmul_if, train):
    two = _tune(matmul_if, train, seed=1, workers=2, batch_size=6, n=36)
    four = _tune(matmul_if, train, seed=1, workers=4, batch_size=6, n=36)
    _assert_same(two, four)


def test_batching_alone_preserves_classic_results(matmul_if, train):
    """batch_size=1 (any workers) reproduces the unbatched serial search."""
    classic = _tune(matmul_if, train, seed=3)
    batched = _tune(matmul_if, train, seed=3, workers=2, batch_size=1)
    _assert_same(classic, batched)


def test_parallel_respects_max_proposals(matmul_if, train):
    res = _tune(matmul_if, train, seed=0, workers=2, batch_size=7, n=30)
    assert res.proposals == 30
    assert len(res.full_history) == 30


@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    noise=st.sampled_from([0.0, 0.01, 0.03]),
    batch_size=st.integers(min_value=1, max_value=6),
)
def test_parallel_reproduces_serial_best(seed, noise, batch_size):
    cp = compile_program(matmul_program(), "incremental")
    datasets = [matmul_sizes(e, 20) for e in (1, 5, 9)]
    serial = _tune(cp, datasets, seed=seed, noise=noise, batch_size=batch_size, n=24)
    parallel = _tune(
        cp, datasets, seed=seed, noise=noise, workers=2, batch_size=batch_size, n=24
    )
    assert serial.best_thresholds == parallel.best_thresholds
    assert serial.best_cost == parallel.best_cost
    assert serial.full_history == parallel.full_history


# a worker hard-exiting can trip a CPython race in the pool's own
# management thread ("dictionary changed size during iteration"); it is
# harmless — the pool is torn down for respawn anyway — but surfaces as a
# thread-exception warning
@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
class TestCrashRecovery:
    """Worker crashes break the whole pool; the executor must keep
    completed chunks, respawn, and re-dispatch only the lost work."""

    def test_crash_mid_batch_recovers_and_matches_serial(
        self, matmul_if, train
    ):
        from repro import faults
        from repro.faults import FaultPlan, FaultRule

        serial = _tune(matmul_if, train, seed=2, batch_size=6, n=24)
        plan = FaultPlan(seed=1, rules=(
            FaultRule(site="worker.eval", kind="worker_crash", p=0.3,
                      max_fires=2),
        ))
        perf.reset()
        with faults.injected(plan):
            crashed = _tune(
                matmul_if, train, seed=2, workers=3, batch_size=6, n=24
            )
        _assert_same(serial, crashed)
        assert perf.counters().get("faults.worker_crashes", 0) >= 1

    def test_crash_in_initializer_recovers(self, matmul_if, train):
        # the replacement pool is built against a consumed-budget plan,
        # so it comes up clean even when the crash hits worker startup
        from repro import faults
        from repro.faults import FaultPlan, FaultRule

        serial = _tune(matmul_if, train, seed=2, batch_size=4, n=12)
        plan = FaultPlan(seed=1, rules=(
            FaultRule(site="worker.eval", kind="worker_crash", at=(0,),
                      max_fires=1),
        ))
        with faults.injected(plan):
            crashed = _tune(
                matmul_if, train, seed=2, workers=2, batch_size=4, n=12
            )
        _assert_same(serial, crashed)

    def test_unbounded_crash_plan_gives_up_with_clear_error(
        self, matmul_if, train
    ):
        from repro import faults
        from repro.faults import FaultPlan, FaultRule

        plan = FaultPlan(seed=0, rules=(
            FaultRule(site="worker.eval", kind="worker_crash", p=1.0),
        ))
        tuner = Autotuner(matmul_if, train, K40, seed=0)
        with faults.injected(plan):
            with pytest.raises(RuntimeError, match="crashed .* times"):
                tuner.tune(max_proposals=8, workers=2, batch_size=4)


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
class TestStartupFailFast:
    def test_worker_dead_on_arrival_raises_immediately(
        self, matmul_if, train
    ):
        from repro import faults
        from repro.faults import FaultPlan, FaultRule

        # every spawned worker dies in its initializer, and the plan never
        # runs out of budget: startup must fail loudly, not hang
        plan = FaultPlan(seed=0, rules=(
            FaultRule(site="worker.init", kind="worker_crash", p=1.0),
        ))
        tuner = Autotuner(matmul_if, train, K40, seed=0)
        with faults.injected(plan):
            with pytest.raises(RuntimeError, match="died during startup"):
                BatchExecutor(tuner, 2)
