"""Search-technique and parameter-space tests."""

import random

import pytest

from repro.tuning.params import LogIntegerParameter, ParameterSpace
from repro.tuning.search import AUCBandit, HillClimb, PatternSearch, RandomSearch, make_technique


class TestLogIntegerParameter:
    def test_random_in_range(self):
        p = LogIntegerParameter("t", 1, 2**20)
        rng = random.Random(0)
        for _ in range(100):
            val = p.random_value(rng)
            assert 1 <= val <= 2**20 * 1.01

    def test_log_scale_distribution(self):
        """Half the samples should land below sqrt(lo*hi) — log uniformity."""
        p = LogIntegerParameter("t", 1, 2**20)
        rng = random.Random(1)
        mid = 2**10
        below = sum(p.random_value(rng) <= mid for _ in range(400))
        assert 120 <= below <= 280

    def test_neighbors_halve_double(self):
        p = LogIntegerParameter("t", 1, 2**20)
        assert set(p.neighbors(16)) == {8, 32}

    def test_neighbors_clipped_at_bounds(self):
        p = LogIntegerParameter("t", 4, 64)
        assert p.neighbors(4) == [8]
        assert p.neighbors(64) == [32]

    def test_clamp(self):
        p = LogIntegerParameter("t", 4, 64)
        assert p.clamp(1) == 4 and p.clamp(1000) == 64


class TestParameterSpace:
    def test_default_config(self):
        sp = ParameterSpace(["a", "b"])
        cfg = sp.default_config()
        assert cfg == {"a": 2**15, "b": 2**15}  # paper's default

    def test_mutate_changes_one(self):
        sp = ParameterSpace(["a", "b", "c"])
        rng = random.Random(0)
        cfg = sp.default_config()
        new = sp.mutate(cfg, rng)
        changed = [k for k in cfg if cfg[k] != new[k]]
        assert len(changed) <= 1

    def test_empty_space(self):
        sp = ParameterSpace([])
        assert sp.mutate({}, random.Random(0)) == {}


class TestTechniques:
    def _space(self):
        return ParameterSpace(["a", "b"])

    def test_random_search(self):
        t = RandomSearch()
        cfg = t.propose(self._space(), random.Random(0), None)
        assert set(cfg) == {"a", "b"}

    def test_hillclimb_needs_incumbent(self):
        t = HillClimb()
        rng = random.Random(0)
        cfg = t.propose(self._space(), rng, None)  # falls back to random
        assert set(cfg) == {"a", "b"}
        best = {"a": 16, "b": 16}
        near = t.propose(self._space(), rng, best)
        moved = [k for k in best if near[k] != best[k]]
        for k in moved:
            assert near[k] in (best[k] // 2, best[k] * 2)

    def test_pattern_moves_more(self):
        t = PatternSearch()
        rng = random.Random(0)
        best = {"a": 16, "b": 16}
        t.propose(self._space(), rng, best)  # should not raise

    def test_bandit_explores_all_arms(self):
        b = AUCBandit()
        rng = random.Random(0)
        for _ in range(len(b.techniques)):
            b.propose(self._space(), rng, None)
            b.feedback(False)
        assert all(c >= 1 for c in b.counts)

    def test_bandit_rewards_improvers(self):
        b = AUCBandit(c=0.1)
        rng = random.Random(0)
        for i in range(60):
            b.propose(self._space(), rng, {"a": 16, "b": 16})
            # pretend arm 1 (hillclimb) always improves
            b.feedback(b._last == 1)
        assert b.counts[1] == max(b.counts)

    def test_make_technique(self):
        for name in ("random", "hillclimb", "pattern", "bandit"):
            assert make_technique(name) is not None
        with pytest.raises(KeyError):
            make_technique("quantum")
