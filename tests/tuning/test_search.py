"""Search-technique and parameter-space tests."""

import random

import pytest

from repro.tuning.params import LogIntegerParameter, ParameterSpace
from repro.tuning.search import AUCBandit, HillClimb, PatternSearch, RandomSearch, make_technique


class TestLogIntegerParameter:
    def test_random_in_range(self):
        p = LogIntegerParameter("t", 1, 2**20)
        rng = random.Random(0)
        for _ in range(100):
            val = p.random_value(rng)
            assert 1 <= val <= 2**20 * 1.01

    def test_log_scale_distribution(self):
        """Half the samples should land below sqrt(lo*hi) — log uniformity."""
        p = LogIntegerParameter("t", 1, 2**20)
        rng = random.Random(1)
        mid = 2**10
        below = sum(p.random_value(rng) <= mid for _ in range(400))
        assert 120 <= below <= 280

    def test_neighbors_halve_double(self):
        p = LogIntegerParameter("t", 1, 2**20)
        assert set(p.neighbors(16)) == {8, 32}

    def test_neighbors_clipped_at_bounds(self):
        p = LogIntegerParameter("t", 4, 64)
        assert p.neighbors(4) == [8]
        assert p.neighbors(64) == [32]

    def test_clamp(self):
        p = LogIntegerParameter("t", 4, 64)
        assert p.clamp(1) == 4 and p.clamp(1000) == 64


class TestParameterSpace:
    def test_default_config(self):
        sp = ParameterSpace(["a", "b"])
        cfg = sp.default_config()
        assert cfg == {"a": 2**15, "b": 2**15}  # paper's default

    def test_mutate_changes_one(self):
        sp = ParameterSpace(["a", "b", "c"])
        rng = random.Random(0)
        cfg = sp.default_config()
        new = sp.mutate(cfg, rng)
        changed = [k for k in cfg if cfg[k] != new[k]]
        assert len(changed) <= 1

    def test_empty_space(self):
        sp = ParameterSpace([])
        assert sp.mutate({}, random.Random(0)) == {}


class TestTechniques:
    def _space(self):
        return ParameterSpace(["a", "b"])

    def test_random_search(self):
        t = RandomSearch()
        cfg = t.propose(self._space(), random.Random(0), None)
        assert set(cfg) == {"a", "b"}

    def test_hillclimb_needs_incumbent(self):
        t = HillClimb()
        rng = random.Random(0)
        cfg = t.propose(self._space(), rng, None)  # falls back to random
        assert set(cfg) == {"a", "b"}
        best = {"a": 16, "b": 16}
        near = t.propose(self._space(), rng, best)
        moved = [k for k in best if near[k] != best[k]]
        for k in moved:
            assert near[k] in (best[k] // 2, best[k] * 2)

    def test_pattern_moves_more(self):
        t = PatternSearch()
        rng = random.Random(0)
        best = {"a": 16, "b": 16}
        t.propose(self._space(), rng, best)  # should not raise

    def test_bandit_explores_all_arms(self):
        b = AUCBandit()
        rng = random.Random(0)
        for _ in range(len(b.techniques)):
            b.propose(self._space(), rng, None)
            b.feedback(False)
        assert all(c >= 1 for c in b.counts)

    def test_bandit_rewards_improvers(self):
        b = AUCBandit(c=0.1)
        rng = random.Random(0)
        for i in range(60):
            b.propose(self._space(), rng, {"a": 16, "b": 16})
            # pretend arm 1 (hillclimb) always improves
            b.feedback(b._last == 1)
        assert b.counts[1] == max(b.counts)

    def test_make_technique(self):
        for name in ("random", "hillclimb", "pattern", "bandit"):
            assert make_technique(name) is not None
        with pytest.raises(KeyError):
            make_technique("quantum")


class TestWindowedBandit:
    """Sliding-window reward decay (opt-in via ``window=``)."""

    def _space(self):
        return ParameterSpace(["a", "b"])

    def test_default_unwindowed_is_bit_identical(self):
        """A window that never evicts replays exactly the historical
        (unwindowed) trajectory — same picks, counts, and rewards."""
        plain, windowed = AUCBandit(), AUCBandit(window=10_000)
        rng_a, rng_b = random.Random(3), random.Random(3)
        picks_a, picks_b = [], []
        for i in range(100):
            plain.propose(self._space(), rng_a, None)
            picks_a.append(plain._last)
            plain.feedback(i % 3 == 0)
            windowed.propose(self._space(), rng_b, None)
            picks_b.append(windowed._last)
            windowed.feedback(i % 3 == 0)
        assert picks_a == picks_b
        assert plain.counts == windowed.counts
        assert plain.rewards == windowed.rewards

    def test_window_bounds_history(self):
        b = AUCBandit(window=5)
        rng = random.Random(0)
        for i in range(40):
            b.propose(self._space(), rng, None)
            b.feedback(i % 2 == 0)
            assert sum(b.counts) <= 5
            assert sum(b.rewards) <= 5 + 1e-12
        assert sum(b.counts) == 5

    def test_evicted_rewards_are_forgotten(self):
        """An arm productive early loses its advantage once those trials
        slide out of the window."""
        b = AUCBandit(window=2)
        rng = random.Random(0)
        b.propose(self._space(), rng, None)
        first = b._last
        b.feedback(True)
        assert b.rewards[first] == 1.0
        # two more proposals evict the rewarded trial entirely
        for _ in range(2):
            b.propose(self._space(), rng, None)
            b.feedback(False)
        assert b.rewards[first] == 0.0

    def test_stale_arm_is_reexplored(self):
        """Once an arm's plays all slide out, its count returns to 0 and
        the unvisited-first rule picks it again."""
        b = AUCBandit(window=1)
        rng = random.Random(0)
        seen = set()
        for _ in range(6):
            b.propose(self._space(), rng, None)
            seen.add(b._last)
            b.feedback(False)
            assert sum(b.counts) == 1
        assert len(seen) > 1

    def test_fractional_rewards_accumulate(self):
        b = AUCBandit()
        rng = random.Random(0)
        b.propose(self._space(), rng, None)
        b.feedback(0.25)
        assert b.rewards[b._last] == 0.25

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            AUCBandit(window=0)
