"""Demoted observations and the online tuner.

While the execution guard has a kernel quarantined (or the service
admitted a job with its engine demoted), measured costs do not reflect
the healthy engine configuration — the tuner must keep serving
thresholds but record *nothing* and never converge on degraded data.
"""

import pytest

from repro import perf
from repro.bench.programs.nw import nw_program
from repro.bench.datasets import table1_sizes
from repro.compiler import compile_program
from repro.gpu import K40
from repro.tuning import OnlineTuner

SIZES = table1_sizes("NW", "D1")


@pytest.fixture(scope="module")
def nw_if():
    return compile_program(nw_program(), "incremental")


class TestDemotedDispatch:
    def test_demoted_dispatch_records_no_observation(self, nw_if):
        tuner = OnlineTuner(nw_if, K40)
        tuner.dispatch(SIZES)  # one healthy observation seeds the class
        seen = tuner.total_observations()
        before = perf.counters().get("online.dispatch.demoted", 0)
        d = tuner.dispatch(SIZES, demoted=True)
        assert d.demoted and not d.explored and d.arm == -1
        assert d.cost is None
        assert tuner.total_observations() == seen
        assert perf.counters()["online.dispatch.demoted"] == before + 1

    def test_demoted_dispatches_never_converge(self, nw_if):
        tuner = OnlineTuner(nw_if, K40)
        for _ in range(300):
            d = tuner.dispatch(SIZES, demoted=True)
            assert not d.converged
        assert tuner.total_observations() == 0

    def test_demoted_serves_best_known_thresholds(self, nw_if):
        tuner = OnlineTuner(nw_if, K40)
        while not tuner.dispatch(SIZES).converged:
            pass
        healthy = tuner.dispatch(SIZES)
        degraded = tuner.dispatch(SIZES, demoted=True)
        assert degraded.thresholds == healthy.thresholds

    def test_converged_class_echoes_demoted_flag(self, nw_if):
        tuner = OnlineTuner(nw_if, K40)
        while not tuner.dispatch(SIZES).converged:
            pass
        d = tuner.dispatch(SIZES, demoted=True)
        # converged classes exploit as usual (zero-work), flag echoed so
        # the service's dispatch event can report the degradation
        assert d.converged and d.demoted

    def test_demoted_on_cold_class_serves_defaults(self, nw_if):
        tuner = OnlineTuner(nw_if, K40)
        d = tuner.dispatch(SIZES, demoted=True)
        assert d.demoted and d.thresholds == {}
        assert tuner.total_observations() == 0
