"""Table 1 and dataset-registry tests: values exactly as published."""

from repro.bench.datasets import FIG2_SWEEP, TABLE1, table1_sizes
from repro.bench.programs.locvolcalib import DATASETS as LVC


class TestTable1:
    def test_all_eight_benchmarks(self):
        assert set(TABLE1) == {
            "Heston",
            "OptionPricing",
            "Backprop",
            "LavaMD",
            "NW",
            "NN",
            "SRAD",
            "Pathfinder",
        }

    def test_heston(self):
        assert table1_sizes("Heston", "D1")["numQuotes"] == 1062
        assert table1_sizes("Heston", "D2")["numQuotes"] == 10000

    def test_optionpricing(self):
        d1 = table1_sizes("OptionPricing", "D1")
        assert d1["numMC"] == 1048576 and d1["numDates"] == 5
        d2 = table1_sizes("OptionPricing", "D2")
        assert d2["numMC"] == 500 and d2["numDates"] == 367

    def test_backprop(self):
        assert table1_sizes("Backprop", "D1")["numIn"] == 2**14
        assert table1_sizes("Backprop", "D2")["numIn"] == 2**20

    def test_lavamd(self):
        assert table1_sizes("LavaMD", "D1")["numBoxes"] == 10**3
        assert table1_sizes("LavaMD", "D2")["numBoxes"] == 3**3
        assert table1_sizes("LavaMD", "D1")["perBox"] == 50

    def test_nw(self):
        d1 = table1_sizes("NW", "D1")
        assert d1["nb"] * d1["B"] == 2048
        d2 = table1_sizes("NW", "D2")
        assert d2["nb"] * d2["B"] == 1024

    def test_nn(self):
        d1 = table1_sizes("NN", "D1")
        assert (d1["numB"], d1["numP"]) == (1, 855280)
        d2 = table1_sizes("NN", "D2")
        assert (d2["numB"], d2["numP"]) == (4096, 128)

    def test_srad(self):
        d1 = table1_sizes("SRAD", "D1")
        assert (d1["numB"], d1["H"], d1["W"]) == (1, 502, 458)
        d2 = table1_sizes("SRAD", "D2")
        assert (d2["numB"], d2["H"], d2["W"]) == (1024, 16, 16)

    def test_pathfinder(self):
        d1 = table1_sizes("Pathfinder", "D1")
        assert (d1["numB"], d1["rows"], d1["cols"]) == (1, 100, 10**5)
        d2 = table1_sizes("Pathfinder", "D2")
        assert (d2["numB"], d2["rows"], d2["cols"]) == (391, 100, 256)

    def test_descriptions_present(self):
        for bench, d in TABLE1.items():
            assert set(d) == {"D1", "D2"}


class TestOtherDatasets:
    def test_locvolcalib_paper_values(self):
        assert LVC["small"] == dict(numS=16, numT=256, numX=32, numY=256)
        assert LVC["medium"] == dict(numS=128, numT=64, numX=256, numY=32)
        assert LVC["large"] == dict(numS=256, numT=64, numX=256, numY=256)

    def test_fig2_constant_work(self):
        for k, sweep in FIG2_SWEEP.items():
            for e, sizes in sweep:
                assert sizes["n"] == 2**e
                assert sizes["n"] * sizes["n"] * sizes["m"] == 2**k
