"""Fast end-to-end sanity of the experiment pipelines, asserting the
paper's qualitative claims on reduced configurations."""

import pytest

from repro.bench.baselines import vendor_matmul_time
from repro.bench.runner import (
    code_expansion_rows,
    fig2_rows,
    fig7_rows,
    fig8_rows,
    fullflat_rows,
)
from repro.gpu import K40, VEGA64


@pytest.fixture(scope="module")
def fig2():
    return fig2_rows(K40, k_eval=25, k_train=20)


@pytest.fixture(scope="module")
def fig7():
    return fig7_rows()


@pytest.fixture(scope="module")
def fig8_subset():
    return fig8_rows(benchmarks=("OptionPricing", "Backprop", "NN", "LavaMD"))


class TestFig2:
    def test_moderate_monotone_decreasing_then_flat(self, fig2):
        # MF improves (or holds) as outer parallelism grows
        for a, b in zip(fig2, fig2[1:]):
            assert b.moderate <= a.moderate * 1.05

    def test_tuned_tracks_lower_envelope(self, fig2):
        for r in fig2:
            envelope = min(r.moderate, max(r.incremental, 1e-12))
            assert r.tuned <= envelope * 1.7

    def test_tuned_beats_moderate_at_degenerate(self, fig2):
        assert fig2[0].tuned < fig2[0].moderate / 50

    def test_tuned_close_to_moderate_at_large(self, fig2):
        assert fig2[-1].tuned <= fig2[-1].moderate * 1.1

    def test_vendor_wins_large(self, fig2):
        # "cuBLAS ... is 2-3x faster on n=7..10" (we accept 2-8x)
        for r in fig2[7:]:
            assert 1.5 <= r.tuned / r.vendor <= 10

    def test_vendor_suboptimal_degenerate(self, fig2):
        # "suboptimal performance on a class of (degenerate) datasets (n<3)"
        for r in fig2[:2]:
            assert r.vendor > r.tuned

    def test_constant_work(self, fig2):
        for r in fig2:
            assert r.n * r.n * r.m == 2**25


class TestFig7:
    def test_aif_always_beats_moderate(self, fig7):
        for r in fig7:
            assert r.tuned <= r.moderate, f"{r.device}/{r.dataset}"

    def test_aif_at_least_as_good_as_if(self, fig7):
        for r in fig7:
            assert r.tuned <= r.incremental * 1.0001

    def test_speedups_significant(self, fig7):
        # the paper reports large AIF speedups on every dataset
        for r in fig7:
            assert r.speedups()["AIF"] >= 1.5

    def test_performance_portability_of_references(self, fig7):
        """§5.2: 'FinPar-Out wins on K40 but loses on Vega 64' (large)."""
        k40 = {r.dataset: r for r in fig7 if r.device == "K40"}
        vega = {r.dataset: r for r in fig7 if r.device == "Vega64"}
        assert k40["large"].finpar_out < k40["large"].finpar_all
        assert vega["large"].finpar_all < vega["large"].finpar_out

    def test_finpar_all_close_to_aif_on_vega(self, fig7):
        """§5.2: on Vega, AIF is slightly slower than FinPar-All."""
        for r in fig7:
            if r.device == "Vega64":
                assert r.finpar_all <= r.tuned * 1.2


class TestFig8:
    def test_aif_never_loses_to_moderate(self, fig8_subset):
        for r in fig8_subset:
            assert r.tuned <= r.moderate * 1.01, f"{r.benchmark}/{r.dataset}"

    def test_optionpricing_reference_slow_on_d2(self, fig8_subset):
        """§5.3: 'The reference utilizes only the outer parallelism, which
        explains the slowdown on D2.'"""
        rows = [
            r for r in fig8_subset
            if r.benchmark == "OptionPricing" and r.dataset == "D2"
        ]
        for r in rows:
            assert r.reference > r.tuned

    def test_backprop_reference_slow(self, fig8_subset):
        """§5.3: Rodinia backprop loses due to its CPU reduce."""
        rows = [r for r in fig8_subset if r.benchmark == "Backprop"]
        for r in rows:
            assert r.reference > r.tuned

    def test_lavamd_d2_aif_wins(self, fig8_subset):
        """§5.3: 'On D2, AIF wins because it also parallelizes the inner
        redomap (at workgroup level).'"""
        rows = [
            r for r in fig8_subset
            if r.benchmark == "LavaMD" and r.dataset == "D2"
        ]
        for r in rows:
            assert r.speedups()["AIF"] > 2
            assert r.tuned < r.reference

    def test_lavamd_d1_reference_competitive(self, fig8_subset):
        """On D1 the two-outer-level strategy is optimal; Rodinia ≈ AIF."""
        rows = [
            r for r in fig8_subset
            if r.benchmark == "LavaMD" and r.dataset == "D1"
        ]
        for r in rows:
            assert 0.3 <= r.tuned / r.reference <= 3

    def test_nn_reference_poor(self, fig8_subset):
        """§5.3: Rodinia NN's reduce on the CPU makes it slow."""
        rows = [
            r for r in fig8_subset
            if r.benchmark == "NN" and r.reference is not None
        ]
        for r in rows:
            assert r.reference > r.tuned


class TestFullFlattening:
    def test_fullflat_typically_within_2x(self):
        """§5.3: full flattening 'typically slower within a factor 2 of
        untuned incremental flattening', OptionPricing an order of
        magnitude (on the dataset with excess redundant parallelism)."""
        rows = fullflat_rows(K40)
        ratios = {(b, d): r for b, d, r in rows}
        within2 = sum(1 for r in ratios.values() if r <= 2.5)
        assert within2 >= len(ratios) * 0.5
        # OptionPricing pays heavily for exploiting redundant nested
        # parallelism; our simplified kernel shows the effect at a smaller
        # factor than the paper's >10x (see EXPERIMENTS.md)
        assert ratios[("OptionPricing", "D2")] > 2
        assert max(ratios.values()) > 3


class TestCodeExpansion:
    def test_sec51_ratios(self):
        """§5.1: 'IF ... generates 3× larger binaries than MF' (on average,
        at most ~4× per the abstract's 'as high as four times')."""
        rows = code_expansion_rows()
        size_ratios = [r[2] for r in rows]
        avg = sum(size_ratios) / len(size_ratios)
        assert 1.5 <= avg <= 8
        assert all(s >= 1 for s in size_ratios)
        # generated pseudo-OpenCL LOC: the closest binary-size analogue
        loc_ratios = [r[3] for r in rows]
        assert all(l >= 1 for l in loc_ratios)


class TestVendorBaseline:
    def test_more_work_costs_more(self):
        a = vendor_matmul_time(1024, 1024, K40)
        b = vendor_matmul_time(2048, 2048, K40)
        assert b > a

    def test_devices_differ(self):
        a = vendor_matmul_time(1024, 1024, K40)
        b = vendor_matmul_time(1024, 1024, VEGA64)
        assert a != b

    def test_dispatch_floor(self):
        assert vendor_matmul_time(1, 1, K40) >= 10e-6
