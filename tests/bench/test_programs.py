"""Per-benchmark program checks: typing, numpy-oracle agreement, and the
parallel structures the paper attributes to each benchmark."""

import numpy as np
import pytest

from repro.compiler import compile_program
from repro.interp import run_program
from repro.ir import source as S
from repro.ir.traverse import walk
from repro.ir.types import ArrayType

from repro.bench.programs.backprop import *  # noqa: F401,F403
from repro.bench.programs.backprop import backprop_inputs, backprop_program, backprop_reference
from repro.bench.programs.heston import heston_inputs, heston_program, heston_reference
from repro.bench.programs.lavamd import lavamd_inputs, lavamd_program, lavamd_reference
from repro.bench.programs.locvolcalib import (
    locvolcalib_inputs,
    locvolcalib_program,
    locvolcalib_reference,
)
from repro.bench.programs.matmul import matmul_program
from repro.bench.programs.nn import nn_inputs, nn_program, nn_reference
from repro.bench.programs.nw import nw_inputs, nw_program, nw_reference
from repro.bench.programs.optionpricing import (
    optionpricing_inputs,
    optionpricing_program,
    optionpricing_reference,
)
from repro.bench.programs.pathfinder import (
    pathfinder_inputs,
    pathfinder_program,
    pathfinder_reference,
)
from repro.bench.programs.srad import srad_inputs, srad_program, srad_reference

ALL_PROGRAMS = {
    "matmul": matmul_program,
    "locvolcalib": locvolcalib_program,
    "optionpricing": optionpricing_program,
    "heston": heston_program,
    "backprop": backprop_program,
    "lavamd": lavamd_program,
    "nn": nn_program,
    "nw": nw_program,
    "srad": srad_program,
    "pathfinder": pathfinder_program,
}


@pytest.mark.parametrize("name", list(ALL_PROGRAMS))
def test_typechecks(name):
    prog = ALL_PROGRAMS[name]()
    ts = prog.check()
    assert len(ts) >= 1


@pytest.mark.parametrize("name", list(ALL_PROGRAMS))
@pytest.mark.parametrize("mode", ("moderate", "incremental", "full"))
def test_compiles_and_validates(name, mode):
    cp = compile_program(ALL_PROGRAMS[name](), mode)
    cp.check()
    assert cp.code_size() > 0


@pytest.mark.parametrize("name", list(ALL_PROGRAMS))
def test_incremental_has_versions_where_nested(name):
    cp = compile_program(ALL_PROGRAMS[name](), "incremental")
    # all the paper's benchmarks exhibit nested parallelism, so incremental
    # flattening must introduce at least one guarded version
    assert len(cp.registry) >= 1


class TestNumpyOracles:
    """Small-size agreement between the interpreter and the per-benchmark
    direct numpy implementation (the transcription check)."""

    def test_matmul(self):
        rng = np.random.default_rng(0)
        A = rng.standard_normal((3, 5)).astype(np.float32)
        B = rng.standard_normal((5, 3)).astype(np.float32)
        (out,) = run_program(matmul_program(), {"xss": A, "yss": B})
        assert np.allclose(out, A @ B, rtol=1e-5)

    def test_locvolcalib(self):
        sz = dict(numS=2, numX=3, numY=4, numT=2)
        inp = locvolcalib_inputs(sz)
        ref = locvolcalib_reference(inp)
        got = run_program(locvolcalib_program(), inp, sizes=sz)
        for r, g in zip(ref, got):
            assert np.allclose(r, g, rtol=1e-5)

    def test_optionpricing(self):
        sz = dict(numMC=5, numDates=3, numUnd=3, numDim=9, numBits=4)
        inp = optionpricing_inputs(sz)
        ref = optionpricing_reference(inp, sz)
        (got,) = run_program(optionpricing_program(), inp, sizes=sz)
        assert np.allclose(ref, got, rtol=1e-5)

    def test_heston(self):
        sz = dict(numCand=3, numQuotes=4, numInt=5)
        inp = heston_inputs(sz)
        (got,) = run_program(heston_program(), inp, sizes=sz)
        assert np.allclose(heston_reference(inp), got, rtol=1e-5)

    def test_backprop(self):
        sz = dict(numIn=5, numHidden=3)
        inp = backprop_inputs(sz)
        (got,) = run_program(backprop_program(), inp, sizes=sz)
        assert np.allclose(backprop_reference(inp), got, rtol=1e-5)

    def test_lavamd(self):
        sz = dict(numBoxes=3, perBox=4, numNbr=2)
        inp = lavamd_inputs(sz)
        (got,) = run_program(lavamd_program(), inp, sizes=sz)
        assert np.allclose(lavamd_reference(inp), got, rtol=1e-5)

    def test_nn(self):
        sz = dict(numB=3, numP=6)
        inp = nn_inputs(sz)
        (got,) = run_program(nn_program(), inp, sizes=sz)
        assert np.allclose(nn_reference(inp), got, rtol=1e-5)

    def test_srad(self):
        sz = dict(numB=2, H=4, W=5, numIter=2)
        inp = srad_inputs(sz)
        (got,) = run_program(srad_program(), inp, sizes=sz)
        assert np.allclose(srad_reference(inp), got, rtol=1e-4)

    def test_pathfinder(self):
        sz = dict(numB=2, rows=4, cols=6)
        inp = pathfinder_inputs(sz)
        (got,) = run_program(pathfinder_program(), inp, sizes=sz)
        assert np.allclose(pathfinder_reference(inp), got, rtol=1e-5)

    def test_nw(self):
        sz = dict(nb=3, B=4, numWaves=5)
        inp = nw_inputs(sz)
        got = run_program(nw_program(), inp, sizes=sz)
        ref = nw_reference(inp, sz)
        for r, g in zip(ref, got):
            assert np.allclose(r, g, rtol=1e-5)


class TestStructuralClaims:
    """The structures §5.3 attributes to each benchmark."""

    def test_heston_three_layers(self):
        # "an outer map, which contains a redomap, which contains a reduce"
        body = heston_program().body
        maps = [n for n in walk(body) if isinstance(n, S.Map)]
        redos = [n for n in walk(body) if isinstance(n, (S.Redomap, S.Reduce))]
        assert maps and len(redos) >= 1

    def test_optionpricing_layers(self):
        # several layers: outer MC map, sobol map/redomap, date loop
        body = optionpricing_program().body
        assert any(isinstance(n, S.Loop) for n in walk(body))
        assert sum(isinstance(n, S.Map) for n in walk(body)) >= 2

    def test_backprop_unfused_map_reduce(self):
        # the source keeps map and reduce separate so fusion is optional
        body = backprop_program().body
        assert any(isinstance(n, S.Reduce) for n in walk(body))
        assert not any(isinstance(n, S.Redomap) for n in walk(body))

    def test_backprop_fusion_changes_code(self):
        fused = compile_program(backprop_program(), "moderate", do_fuse=True)
        unfused = compile_program(backprop_program(), "moderate", do_fuse=False)
        from repro.ir.pretty import pretty

        assert pretty(fused.body) != pretty(unfused.body)

    def test_lavamd_loop_of_redomap(self):
        body = lavamd_program().body
        loops = [n for n in walk(body) if isinstance(n, S.Loop)]
        assert loops
        assert any(isinstance(n, S.Redomap) for n in walk(loops[0].body))

    def test_nw_scan_based_blocks(self):
        body = nw_program().body
        assert any(isinstance(n, S.Scanomap) for n in walk(body))

    def test_matmul_result_square(self):
        (t,) = matmul_program().check()
        assert isinstance(t, ArrayType)
        assert str(t) == "[n][n]f32"
