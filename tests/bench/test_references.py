"""Tests of the hand-written reference models and forced-path helpers."""

import pytest

from repro.bench import references as refs
from repro.bench.programs.locvolcalib import locvolcalib_sizes
from repro.bench.programs.matmul import matmul_program
from repro.bench.programs.nn import nn_sizes
from repro.bench.programs.nw import nw_sizes
from repro.bench.programs.optionpricing import optionpricing_program, optionpricing_sizes
from repro.bench.programs.pathfinder import pathfinder_sizes
from repro.compiler import compile_program
from repro.gpu import K40, VEGA64
from repro.tuning import path_signature


class TestForceThresholds:
    def test_top_forces_first_guard(self):
        cp = compile_program(matmul_program(), "incremental")
        th = refs.force_thresholds(cp, "top")
        sig = path_signature(cp.body, {"n": 64, "m": 64}, th, device=K40)
        assert sig[0][1] is True  # first guard taken

    def test_flat_forces_all_false(self):
        cp = compile_program(matmul_program(), "incremental")
        th = refs.force_thresholds(cp, "flat")
        sig = path_signature(cp.body, {"n": 64, "m": 64}, th, device=K40)
        assert all(not taken for _, taken in sig)

    def test_middle_mixes(self):
        cp = compile_program(matmul_program(), "incremental")
        th = refs.force_thresholds(cp, "middle")
        for t in cp.registry.items:
            expected = 1 if t.kind == "suff_intra_par" else 2**30
            assert th[t.name] == expected

    def test_unknown_choice(self):
        cp = compile_program(matmul_program(), "incremental")
        with pytest.raises(ValueError):
            refs.force_thresholds(cp, "sideways")


class TestFinPar:
    def test_out_scales_with_work(self):
        small = refs.finpar_out_time(locvolcalib_sizes("small"), K40)
        large = refs.finpar_out_time(locvolcalib_sizes("large"), K40)
        assert large > small

    def test_all_scales_with_work(self):
        small = refs.finpar_all_time(locvolcalib_sizes("small"), K40)
        large = refs.finpar_all_time(locvolcalib_sizes("large"), K40)
        assert large > small

    def test_portability_flip_on_large(self):
        """The §5.2 headline: Out wins on K40, All wins on Vega 64."""
        s = locvolcalib_sizes("large")
        assert refs.finpar_out_time(s, K40) < refs.finpar_all_time(s, K40)
        assert refs.finpar_all_time(s, VEGA64) < refs.finpar_out_time(s, VEGA64)

    def test_all_wins_small_everywhere(self):
        """Small dataset: outer parallelism is insufficient for Out."""
        s = locvolcalib_sizes("small")
        for dev in (K40, VEGA64):
            assert refs.finpar_all_time(s, dev) < refs.finpar_out_time(s, dev)


class TestRodiniaModels:
    def test_nn_dominated_by_transfer(self):
        s = nn_sizes("D1")
        t = refs.nn_reference_time(s, K40)
        transfer = s["numB"] * s["numP"] * 4.0 / K40.host_bw
        assert t > transfer * 0.5  # the PCIe transfer is the story

    def test_backprop_cpu_reduce_dominates_large(self):
        d1 = refs.backprop_reference_time(dict(numIn=2**14, numHidden=16), K40)
        d2 = refs.backprop_reference_time(dict(numIn=2**20, numHidden=16), K40)
        assert d2 > d1 * 20  # transfer grows linearly with numIn

    def test_nw_scales_with_waves(self):
        d1 = refs.nw_reference_time(nw_sizes("D1"), K40)
        d2 = refs.nw_reference_time(nw_sizes("D2"), K40)
        assert d1 > d2  # more waves, more blocks

    def test_pathfinder_overhead_applied(self):
        s = pathfinder_sizes("D1")
        t = refs.pathfinder_reference_time(s, K40)
        assert t > 0

    def test_optionpricing_forced_top(self):
        cp = compile_program(optionpricing_program(), "incremental")
        s = optionpricing_sizes("D2")
        ref = refs.optionpricing_reference_time(cp, s, K40)
        best = cp.simulate(s, K40).time
        assert ref > best  # outer-only loses where inner layers matter

    def test_srad_uses_flat_path(self):
        from repro.bench.programs.srad import srad_program, srad_sizes

        cp = compile_program(srad_program(), "incremental")
        s = srad_sizes("D1")
        t = refs.srad_reference_time(cp, s, K40)
        flat = cp.simulate(
            s, K40, thresholds=refs.force_thresholds(cp, "flat")
        ).time
        assert t == pytest.approx(flat * refs.HAND_TUNING_MARGIN)
