"""ASCII plotting tests."""

from repro.bench.plotting import bar_chart, line_chart


class TestLineChart:
    def test_renders_all_series(self):
        out = line_chart(
            {"MF": [10.0, 1.0], "IF": [2.0, 2.0]},
            ["0", "1"],
            title="t",
        )
        assert "A=MF" in out and "B=IF" in out
        assert "t" in out.splitlines()[0]

    def test_log_scale_spans_decades(self):
        out = line_chart({"s": [0.001, 1000.0]}, ["0", "1"], height=10)
        assert "log10" in out

    def test_linear_scale(self):
        out = line_chart({"s": [1.0, 2.0]}, ["0", "1"], log_y=False)
        assert "linear" in out

    def test_extremes_at_edges(self):
        out = line_chart({"s": [1.0, 100.0]}, ["0", "1"], height=8)
        rows = [l for l in out.splitlines() if "|" in l]
        assert "A" in rows[0].split("|")[1]  # max on the top row
        assert "A" in rows[-1].split("|")[1]  # min on the bottom row

    def test_empty_data(self):
        assert "no data" in line_chart({"s": []}, [])

    def test_zero_values_skipped_on_log(self):
        out = line_chart({"s": [0.0, 1.0]}, ["0", "1"])
        assert out  # must not crash on log(0)


class TestBarChart:
    def test_bars_proportional(self):
        out = bar_chart([("a", 4.0), ("b", 2.0)], width=8)
        lines = out.splitlines()
        assert lines[0].count("█") > lines[1].count("█")

    def test_values_printed(self):
        out = bar_chart([("x", 3.14)])
        assert "3.14" in out

    def test_reference_marker(self):
        out = bar_chart([("slow", 0.5), ("fast", 4.0)], width=20, reference=1.0)
        assert "|" in out.splitlines()[0]  # sub-reference bar shows the line

    def test_labels_aligned(self):
        out = bar_chart([("long-name", 1.0), ("x", 1.0)])
        lines = out.splitlines()
        assert lines[0].index("█") == lines[1].index("█")

    def test_empty(self):
        assert "no data" in bar_chart([])
