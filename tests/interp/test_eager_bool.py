"""Eager ``&&``/``||``: both operands evaluate before the operator.

The interpreter has *no* short-circuit evaluation (see the ``_BINOPS``
comment in ``repro.interp.evaluator`` and ``docs/execution.md``): ``a && b``
evaluates ``b`` even when ``a`` is false.  The vectorizing executor relies
on this — a lifted ``np.logical_and`` necessarily computes both operand
arrays — so the two engines only agree *because* the oracle is eager.
These are the differential regressions: programs whose RHS traps exactly
when it is evaluated, so a short-circuiting engine would (wrongly) succeed
where the eager one raises — on either engine.
"""

import numpy as np
import pytest

from repro.exec import VectorEvaluator
from repro.interp import Evaluator, InterpError
from repro.ir import source as S
from repro.ir.builder import i64, map_, v

SCALAR = Evaluator()

#: what an out-of-bounds index raises, engine-independently
OOB = (InterpError, IndexError)


def _oob_and():
    # false && (xs[5] > 0) — short-circuiting would return false;
    # eager evaluation indexes out of bounds and traps
    return S.BinOp(
        "&&",
        S.BinOp("<", i64(99), i64(0)),
        S.BinOp(">", v("xs")[i64(5)], i64(0)),
    )


def _oob_or():
    # true || (xs[5] > 0) — same trap under ``||``
    return S.BinOp(
        "||",
        S.BinOp("<", i64(0), i64(99)),
        S.BinOp(">", v("xs")[i64(5)], i64(0)),
    )


XS = np.asarray([1, 2, 3], dtype=np.int64)


class TestEagerTrapsBothEngines:
    @pytest.mark.parametrize("mk", [_oob_and, _oob_or], ids=["and", "or"])
    def test_scalar_rhs_trap(self, mk):
        with pytest.raises(OOB):
            SCALAR.eval(mk(), {"xs": XS})

    @pytest.mark.parametrize("mk", [_oob_and, _oob_or], ids=["and", "or"])
    def test_vector_rhs_trap(self, mk):
        with pytest.raises(OOB):
            VectorEvaluator().eval(mk(), {"xs": XS})

    def test_batched_rhs_trap(self):
        # one lane's guard is false but its gather is out of bounds: an
        # eager batched ``&&`` must trap on both engines
        e = map_(
            lambda i: S.BinOp(
                "&&",
                S.BinOp("<", i, i64(3)),
                S.BinOp(">", v("xs")[i], i64(0)),
            ),
            v("idx"),
        )
        idx = np.asarray([0, 1, 7], dtype=np.int64)  # 7 is out of bounds
        with pytest.raises(OOB):
            SCALAR.eval(e, {"xs": XS, "idx": idx})
        with pytest.raises(OOB):
            VectorEvaluator().eval(e, {"xs": XS, "idx": idx})


class TestEagerValuesAgree:
    def test_truth_table_parity(self):
        e = map_(
            lambda a, b: (S.BinOp("&&", a, b), S.BinOp("||", a, b)),
            v("a"),
            v("b"),
        )
        a = np.asarray([True, True, False, False])
        b = np.asarray([True, False, True, False])
        ref = SCALAR.eval(e, {"a": a, "b": b})
        got = VectorEvaluator().eval(e, {"a": a, "b": b})
        for r, g in zip(ref, got):
            ra, ga = np.asarray(r), np.asarray(g)
            assert ra.dtype == ga.dtype
            assert ra.tobytes() == ga.tobytes()
