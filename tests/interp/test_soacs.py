"""SOAC semantics versus numpy oracles, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.interp import Evaluator
from repro.ir.builder import (
    f32,
    i64,
    lam,
    map_,
    op2,
    redomap_,
    reduce_,
    scan_,
    scanomap_,
    v,
)

EV = Evaluator()


def run1(e, **env):
    return EV.eval1(e, env)


def arr(xs, dtype=np.float32):
    return np.asarray(xs, dtype=dtype)


class TestMap:
    def test_scalar_map(self):
        out = run1(map_(lambda x: x * 2.0, v("xs")), xs=arr([1, 2, 3]))
        assert np.array_equal(out, arr([2, 4, 6]))

    def test_multi_input(self):
        out = run1(
            map_(lambda x, y: x + y, v("xs"), v("ys")),
            xs=arr([1, 2]),
            ys=arr([10, 20]),
        )
        assert np.array_equal(out, arr([11, 22]))

    def test_multi_output(self):
        outs = EV.eval(
            map_(lambda x, y: (2.0 * x, 3.0 + y), v("xs"), v("ys")),
            {"xs": arr([1, 2]), "ys": arr([5, 6])},
        )
        assert np.array_equal(outs[0], arr([2, 4]))
        assert np.array_equal(outs[1], arr([8, 9]))

    def test_nested_rows(self):
        out = run1(
            map_(lambda row: map_(lambda x: x + 1.0, row), v("xss")),
            xss=arr([[1, 2], [3, 4]]),
        )
        assert np.array_equal(out, arr([[2, 3], [4, 5]]))

    def test_irregular_inputs_rejected(self):
        from repro.interp import InterpError

        with pytest.raises(InterpError):
            run1(
                map_(lambda x, y: x + y, v("xs"), v("ys")),
                xs=arr([1, 2, 3]),
                ys=arr([1, 2]),
            )


class TestReduce:
    def test_sum(self):
        assert run1(reduce_(op2("+"), f32(0.0), v("xs")), xs=arr([1, 2, 3])) == 6

    def test_max(self):
        assert run1(reduce_(op2("max"), f32(-1e9), v("xs")), xs=arr([3, 9, 2])) == 9

    def test_empty_is_ne(self):
        assert run1(
            reduce_(op2("+"), f32(7.0), v("xs")), xs=np.zeros(0, np.float32)
        ) == np.float32(7.0)

    def test_tuple_reduce(self):
        # the paper's §2 example: reduce over two arrays at once
        outs = EV.eval(
            reduce_(
                lam(lambda x1, x2, y1, y2: (x1 + y1, x2 * y2)),
                [f32(0.0), f32(1.0)],
                v("zs1"),
                v("zs2"),
            ),
            {"zs1": arr([1, 2, 3]), "zs2": arr([2, 2, 2])},
        )
        assert outs[0] == 6 and outs[1] == 8


class TestScan:
    def test_prefix_sum(self):
        # paper §2: scan (+) 0 [a1..an]
        out = run1(scan_(op2("+"), f32(0.0), v("xs")), xs=arr([1, 2, 3, 4]))
        assert np.array_equal(out, arr([1, 3, 6, 10]))

    def test_paper_segscan_example_rows(self):
        # scanning rows of [[1,2],[3,4]] gives [[1,3],[3,7]]
        out = run1(
            map_(lambda row: scan_(op2("+"), i64(0), row), v("xss")),
            xss=arr([[1, 2], [3, 4]], np.int64),
        )
        assert np.array_equal(out, arr([[1, 3], [3, 7]], np.int64))


class TestFused:
    def test_redomap_equals_reduce_of_map(self):
        xs = arr([1.5, 2.5, 3.0])
        fused = run1(
            redomap_(op2("+"), lambda x: x * x, f32(0.0), v("xs")), xs=xs
        )
        unfused = run1(
            reduce_(op2("+"), f32(0.0), map_(lambda x: x * x, v("xs"))), xs=xs
        )
        assert fused == unfused

    def test_scanomap_equals_scan_of_map(self):
        xs = arr([1, 2, 3])
        fused = run1(scanomap_(op2("+"), lambda x: x * 2.0, f32(0.0), v("xs")), xs=xs)
        unfused = run1(
            scan_(op2("+"), f32(0.0), map_(lambda x: x * 2.0, v("xs"))), xs=xs
        )
        assert np.array_equal(fused, unfused)

    def test_redomap_dot_product(self):
        out = run1(
            redomap_(op2("+"), lambda x, y: x * y, f32(0.0), v("xs"), v("ys")),
            xs=arr([1, 2, 3]),
            ys=arr([4, 5, 6]),
        )
        assert out == 32


# -- hypothesis oracles --------------------------------------------------------

floats = st.floats(
    min_value=-100, max_value=100, allow_nan=False, width=32
)
f32_arrays = st.lists(floats, min_size=1, max_size=20).map(
    lambda xs: np.asarray(xs, dtype=np.float32)
)


@settings(max_examples=50)
@given(f32_arrays)
def test_map_matches_numpy(xs):
    out = run1(map_(lambda x: x * 2.0 + 1.0, v("xs")), xs=xs)
    assert np.allclose(out, xs * np.float32(2.0) + np.float32(1.0))


@settings(max_examples=50)
@given(f32_arrays)
def test_reduce_max_matches_numpy(xs):
    out = run1(reduce_(op2("max"), f32(-1e30), v("xs")), xs=xs)
    assert out == np.max(xs)


@settings(max_examples=50)
@given(f32_arrays)
def test_scan_length_and_last(xs):
    out = run1(scan_(op2("max"), f32(-1e30), v("xs")), xs=xs)
    assert len(out) == len(xs)
    assert out[-1] == np.max(xs)
    assert np.all(np.diff(out) >= 0)  # max-scan is monotone


@settings(max_examples=50)
@given(st.lists(st.integers(-50, 50), min_size=1, max_size=20))
def test_int_scan_matches_cumsum(vals):
    xs = np.asarray(vals, dtype=np.int64)
    out = run1(scan_(op2("+"), i64(0), v("xs")), xs=xs)
    assert np.array_equal(out, np.cumsum(xs))
