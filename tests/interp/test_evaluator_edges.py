"""Evaluator edge cases and error behaviour."""

import numpy as np
import pytest

from repro.interp import Evaluator, InterpError
from repro.ir import source as S
from repro.ir import target as T
from repro.ir.builder import f32, i64, map_, op2, scan_, v
from repro.sizes import SizeVar

EV = Evaluator(sizes={"n": 4})


class TestErrors:
    def test_unbound_variable(self):
        with pytest.raises(InterpError, match="unbound"):
            EV.eval1(v("ghost"), {})

    def test_lambda_arity(self):
        lam = S.Lambda(("a", "b"), S.Var("a"))
        with pytest.raises(InterpError):
            EV.apply(lam, (np.float32(1.0),), {})

    def test_loop_body_arity(self):
        e = S.Loop(("a",), (f32(0.0),), "i", i64(2),
                   S.TupleExp([v("a"), v("a")]))
        with pytest.raises(InterpError):
            EV.eval(e, {})

    def test_map_empty_array(self):
        with pytest.raises(InterpError):
            EV.eval1(
                map_(lambda x: x, v("xs")), {"xs": np.zeros(0, np.float32)}
            )

    def test_scan_empty_array(self):
        with pytest.raises(InterpError):
            EV.eval1(
                scan_(op2("+"), f32(0.0), v("xs")),
                {"xs": np.zeros(0, np.float32)},
            )

    def test_multi_value_where_single_expected(self):
        with pytest.raises(InterpError):
            EV.eval1(S.TupleExp([f32(1.0), f32(2.0)]), {})

    def test_eval_unknown_node_class(self):
        class Bogus(S.Exp):
            _fields = ()

        with pytest.raises(InterpError):
            EV.eval(Bogus(), {})


class TestSizeEnvironment:
    def test_sizee_uses_sizes(self):
        assert EV.eval1(S.SizeE(SizeVar("n")), {}) == 4

    def test_sizee_missing(self):
        with pytest.raises(KeyError):
            Evaluator().eval1(S.SizeE(SizeVar("q")), {})

    def test_parcmp_default_is_paper_value(self):
        from repro.interp import DEFAULT_THRESHOLD

        assert DEFAULT_THRESHOLD == 2**15


class TestNumericBehaviour:
    def test_f32_stays_f32(self):
        out = EV.eval1(f32(0.1) + f32(0.2), {})
        assert out.dtype == np.float32

    def test_integer_division_floors(self):
        assert EV.eval1(i64(-7) / i64(2), {}) == -4  # floor division

    def test_mod(self):
        assert EV.eval1(i64(7) % i64(3), {}) == 1

    def test_pow(self):
        assert EV.eval1(S.BinOp("pow", f32(2.0), f32(10.0)), {}) == 1024.0

    def test_comparisons_return_python_bools(self):
        out = EV.eval1(i64(3).lt(4), {})
        assert out is True

    def test_scan_preserves_dtype(self):
        out = EV.eval1(
            scan_(op2("+"), f32(0.0), v("xs")),
            {"xs": np.ones(3, np.float32)},
        )
        assert out.dtype == np.float32


class TestSegOpEdges:
    def test_segred_with_empty_inner_dim_gives_nes(self):
        ctx = T.Ctx(
            [
                T.Binding(("row",), (v("xss"),), SizeVar("n")),
                T.Binding(("x",), (v("row"),), SizeVar("m")),
            ]
        )
        e = T.SegRed(1, ctx, op2("+"), [f32(7.0)], v("x"))
        out = EV.eval1(e, {"xss": np.zeros((3, 0), np.float32)})
        assert np.array_equal(out, [7, 7, 7])

    def test_segmap_binding_arrays_reference_outer_params(self):
        # G6-style chained binding: inner arrays indexed through outer params
        ctx = T.Ctx(
            [
                T.Binding(("row",), (v("xss"),), SizeVar("n")),
                T.Binding(("x",), (v("row"),), SizeVar("m")),
            ]
        )
        e = T.SegMap(1, ctx, v("x") * 10.0)
        out = EV.eval1(e, {"xss": np.ones((2, 3), np.float32)})
        assert out.shape == (2, 3) and out[0, 0] == 10.0

    def test_irregular_segop_rejected(self):
        ctx = T.Ctx([T.Binding(("a", "b"), (v("xs"), v("ys")), SizeVar("n"))])
        e = T.SegMap(1, ctx, v("a") + v("b"))
        with pytest.raises(InterpError):
            EV.eval1(
                e,
                {
                    "xs": np.ones(3, np.float32),
                    "ys": np.ones(4, np.float32),
                },
            )
