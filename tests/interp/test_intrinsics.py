"""Intrinsic machinery tests: registration, typing, semantics, cost.

Uses the ``thomas_tridag`` intrinsic (FinPar-Out's sequential solver) as
the worked example: it is semantically identical to LocVolCalib's
three-scan tridag but carries a cheaper cost profile — the paper's §5.2
explanation for FinPar-Out's advantage on the large dataset.
"""

import numpy as np
import pytest

import repro.bench.references  # noqa: F401  (registers thomas_tridag)
from repro.bench.programs.locvolcalib import _np_tridag
from repro.compiler import compile_program
from repro.gpu import K40
from repro.interp import Evaluator
from repro.interp.intrinsics import IntrinsicDef, get, register
from repro.ir.builder import Program, f32, intrinsic, map_, scan_, v
from repro.ir.typecheck import TypeError_, typeof
from repro.ir.types import F32, array_of
from repro.sizes import SizeVar

EV = Evaluator()


class TestRegistry:
    def test_lookup(self):
        assert get("thomas_tridag").name == "thomas_tridag"

    def test_unknown(self):
        with pytest.raises(KeyError):
            get("warp_drive")

    def test_register_custom(self):
        from repro.ir.types import I64

        register(
            IntrinsicDef(
                name="_test_double",
                type_rule=lambda ts: ts,
                interp=lambda x: np.int64(int(x) * 2),
                cost=lambda avals, sizes: (1.0, 0.0, 0.0),
            )
        )
        e = intrinsic("_test_double", 21)
        assert EV.eval1(e, {}) == 42
        assert typeof(e, {}) == (I64,)


class TestThomasTridag:
    def test_typing(self):
        n = SizeVar("n")
        env = {"xs": array_of(F32, n)}
        (t,) = typeof(intrinsic("thomas_tridag", v("xs")), env)
        assert t == array_of(F32, n)

    def test_type_error_on_matrix(self):
        env = {"xss": array_of(F32, SizeVar("n"), SizeVar("m"))}
        with pytest.raises(TypeError_):
            typeof(intrinsic("thomas_tridag", v("xss")), env)

    def test_semantics_match_scan_formulation(self):
        """The intrinsic computes exactly what the three scans compute."""
        rng = np.random.default_rng(0)
        xs = rng.standard_normal(16).astype(np.float32)
        out = EV.eval1(intrinsic("thomas_tridag", v("xs")), {"xs": xs})
        ref = _np_tridag(xs[None, :])[0]
        assert np.allclose(out, ref, rtol=1e-6)

    def test_cost_cheaper_than_scans(self):
        """FinPar-Out's point: fewer global accesses than the scans."""
        n = SizeVar("n")
        thomas = Program(
            "thomas",
            [("xss", array_of(F32, n, 64))],
            map_(lambda row: intrinsic("thomas_tridag", row), v("xss")),
        )
        scans = Program(
            "scans",
            [("xss", array_of(F32, n, 64))],
            map_(
                lambda row: scan_(
                    lambda a, b: a * 0.125 + b,
                    f32(0.0),
                    scan_(
                        lambda a, b: a * 0.25 + b * 1.5,
                        f32(0.0),
                        scan_(lambda a, b: a * 0.5 + b, f32(0.0), row),
                    ),
                ),
                v("xss"),
            ),
        )
        sizes = {"n": 4096}
        t_thomas = compile_program(thomas, "moderate").simulate(sizes, K40)
        t_scans = compile_program(scans, "moderate").simulate(sizes, K40)
        assert t_thomas.total_gbytes < t_scans.total_gbytes

    def test_intrinsic_flattens_inside_map(self):
        n = SizeVar("n")
        prog = Program(
            "p",
            [("xss", array_of(F32, n, 8))],
            map_(lambda row: intrinsic("thomas_tridag", row), v("xss")),
        )
        cp = compile_program(prog, "incremental")
        rng = np.random.default_rng(1)
        xss = rng.standard_normal((3, 8)).astype(np.float32)
        (got,) = cp.run({"xss": xss})
        ref = _np_tridag(xss)
        assert np.allclose(got, ref, rtol=1e-6)
