"""Interpreter semantics of the non-SOAC constructs."""

import numpy as np
import pytest

from repro.interp import Evaluator, InterpError, bind_sizes, run_program
from repro.ir import source as S
from repro.ir.builder import (
    Program,
    f32,
    i64,
    if_,
    iota,
    let_,
    loop_,
    map_,
    replicate,
    size_e,
    transpose,
    v,
)
from repro.ir.types import F32, I64, array_of
from repro.sizes import SizeVar

EV = Evaluator(sizes={"n": 4})


def run1(e, **env):
    return EV.eval1(e, env)


class TestBasics:
    def test_literals(self):
        assert run1(f32(1.5)) == np.float32(1.5)
        assert run1(i64(-3)) == -3

    def test_let(self):
        e = let_(f32(2.0), lambda a: a * a)
        assert run1(e) == 4.0

    def test_let_multi(self):
        e = S.Let(("a", "b"), S.TupleExp([f32(1.0), f32(2.0)]), v("a") + v("b"))
        assert run1(e) == 3.0

    def test_let_arity_error(self):
        with pytest.raises(InterpError):
            run1(S.Let(("a", "b"), f32(1.0), v("a")))

    def test_if(self):
        assert run1(if_(S.lift(True), f32(1.0), f32(2.0))) == 1.0
        assert run1(if_(S.lift(False), f32(1.0), f32(2.0))) == 2.0

    def test_division_semantics(self):
        assert run1(f32(7.0) / f32(2.0)) == np.float32(3.5)
        assert run1(i64(7) / i64(2)) == 3  # integer division

    def test_unops(self):
        assert run1(S.UnOp("sqrt", f32(9.0))) == 3.0
        assert run1(S.UnOp("not", S.lift(False)))
        assert run1(S.UnOp("to_i64", f32(3.7))) == 3


class TestArrays:
    def test_index(self):
        out = run1(v("xs")[i64(1)], xs=np.asarray([5, 6, 7]))
        assert out == 6

    def test_index_partial(self):
        out = run1(v("xss")[i64(0)], xss=np.arange(6).reshape(2, 3))
        assert np.array_equal(out, [0, 1, 2])

    def test_iota(self):
        assert np.array_equal(run1(iota(i64(3))), [0, 1, 2])

    def test_iota_symbolic(self):
        assert np.array_equal(run1(iota(size_e("n"))), [0, 1, 2, 3])

    def test_replicate_scalar(self):
        assert np.array_equal(run1(replicate(i64(3), f32(1.0))), [1, 1, 1])

    def test_replicate_array(self):
        out = run1(replicate(i64(2), v("xs")), xs=np.asarray([1, 2]))
        assert out.shape == (2, 2)

    def test_transpose(self):
        out = run1(transpose(v("xss")), xss=np.arange(6).reshape(2, 3))
        assert out.shape == (3, 2)

    def test_rearrange_3d(self):
        out = run1(
            S.Rearrange((0, 2, 1), v("a")), a=np.arange(24).reshape(2, 3, 4)
        )
        assert out.shape == (2, 4, 3)


class TestLoop:
    def test_accumulator(self):
        e = loop_([i64(0)], i64(5), lambda i, a: a + i)
        assert run1(e) == 10

    def test_zero_iterations(self):
        e = loop_([i64(42)], i64(0), lambda i, a: a + 1)
        assert run1(e) == 42

    def test_multi_state(self):
        e = loop_([i64(0), i64(1)], i64(4), lambda i, a, b: (b, a + b))
        outs = EV.eval(e, {})
        assert (outs[0], outs[1]) == (3, 5)  # Fibonacci

    def test_array_state(self):
        e = loop_([v("xs")], i64(3), lambda i, a: map_(lambda x: x * 2.0, a))
        out = run1(e, xs=np.asarray([1.0], np.float32))
        assert out[0] == 8.0


class TestProgramRunner:
    def _prog(self):
        n = SizeVar("n")
        return Program(
            "p",
            [("xs", array_of(F32, n)), ("k", I64)],
            map_(lambda x: x * 2.0, v("xs")),
        )

    def test_run(self):
        (out,) = run_program(self._prog(), {"xs": np.ones(3, np.float32), "k": 1})
        assert np.array_equal(out, [2, 2, 2])

    def test_bind_sizes(self):
        sizes = bind_sizes(self._prog(), {"xs": np.ones(5, np.float32)})
        assert sizes == {"n": 5}

    def test_bind_sizes_inconsistent(self):
        n = SizeVar("n")
        prog = Program(
            "p",
            [("a", array_of(F32, n)), ("b", array_of(F32, n))],
            v("a"),
        )
        with pytest.raises(InterpError):
            bind_sizes(
                prog, {"a": np.ones(3, np.float32), "b": np.ones(4, np.float32)}
            )

    def test_scalar_param_becomes_size(self):
        n = SizeVar("n")
        prog = Program(
            "p",
            [("xs", array_of(F32, n)), ("k", I64)],
            loop_([f32(0.0)], v("k"), lambda i, a: a + 1.0),
        )
        (out,) = run_program(prog, {"xs": np.ones(2, np.float32), "k": 4})
        assert out == 4.0
