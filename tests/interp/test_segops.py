"""The §2.1 defining equations: seg-ops equal their map-nest expansions."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.interp import Evaluator
from repro.ir import target as T
from repro.ir.builder import f32, i64, map_, op2, redomap_, scanomap_, v
from repro.sizes import SizeVar

EV = Evaluator(thresholds={"t0": 8})


def ctx2(xss_name="xss"):
    return T.Ctx(
        [
            T.Binding(("row",), (v(xss_name),), SizeVar("n")),
            T.Binding(("x",), (v("row"),), SizeVar("m")),
        ]
    )


def arr2(rng, n=3, m=4):
    return rng.uniform(-5, 5, (n, m)).astype(np.float32)


class TestSegMap:
    def test_paper_example(self):
        # segmap^1 ⟨xs ∈ xss⟩⟨x ∈ xs⟩ (x+1) on [[1,2],[3,4]] = [[2,3],[4,5]]
        e = T.SegMap(1, ctx2(), v("x") + i64(1))
        out = EV.eval1(e, {"xss": np.asarray([[1, 2], [3, 4]])})
        assert np.array_equal(out, [[2, 3], [4, 5]])

    def test_equals_nested_maps(self):
        rng = np.random.default_rng(0)
        xss = arr2(rng)
        seg = T.SegMap(1, ctx2(), v("x") * 2.0 + 1.0)
        nest = map_(lambda row: map_(lambda x: x * 2.0 + 1.0, row), v("xss"))
        a = EV.eval1(seg, {"xss": xss})
        b = EV.eval1(nest, {"xss": xss})
        assert np.array_equal(a, b)

    def test_multi_result(self):
        rng = np.random.default_rng(1)
        xss = arr2(rng)
        from repro.ir.source import TupleExp

        seg = T.SegMap(1, ctx2(), TupleExp([v("x") + 1.0, v("x") * 2.0]))
        outs = EV.eval(seg, {"xss": xss})
        assert np.allclose(outs[0], xss + 1)
        assert np.allclose(outs[1], xss * 2)


class TestSegRed:
    def test_equals_map_of_redomap(self):
        rng = np.random.default_rng(2)
        xss = arr2(rng)
        seg = T.SegRed(1, ctx2(), op2("+"), [f32(0.0)], v("x") * v("x"))
        nest = map_(
            lambda row: redomap_(op2("+"), lambda x: x * x, f32(0.0), row),
            v("xss"),
        )
        a = EV.eval1(seg, {"xss": xss})
        b = EV.eval1(nest, {"xss": xss})
        assert np.array_equal(a, b)

    def test_full_reduction_single_binding(self):
        ctx = T.Ctx([T.Binding(("x",), (v("xs"),), SizeVar("n"))])
        seg = T.SegRed(1, ctx, op2("+"), [f32(0.0)], v("x"))
        out = EV.eval1(seg, {"xs": np.asarray([1, 2, 3], np.float32)})
        assert out == 6


class TestSegScan:
    def test_paper_example(self):
        # segscan^1 ⟨xs∈xss⟩⟨x∈xs⟩ (+) 0 (x) on [[1,2],[3,4]] = [[1,3],[3,7]]
        e = T.SegScan(1, ctx2(), op2("+"), [i64(0)], v("x"))
        out = EV.eval1(e, {"xss": np.asarray([[1, 2], [3, 4]])})
        assert np.array_equal(out, [[1, 3], [3, 7]])

    def test_equals_map_of_scanomap(self):
        rng = np.random.default_rng(3)
        xss = arr2(rng)
        seg = T.SegScan(1, ctx2(), op2("max"), [f32(-1e9)], v("x") + 1.0)
        nest = map_(
            lambda row: scanomap_(op2("max"), lambda x: x + 1.0, f32(-1e9), row),
            v("xss"),
        )
        a = EV.eval1(seg, {"xss": xss})
        b = EV.eval1(nest, {"xss": xss})
        assert np.array_equal(a, b)


class TestParCmp:
    def test_threshold_taken(self):
        ev = Evaluator(sizes={"n": 100}, thresholds={"t": 50})
        assert ev.eval1(T.ParCmp(SizeVar("n"), "t"), {})

    def test_threshold_not_taken(self):
        ev = Evaluator(sizes={"n": 10}, thresholds={"t": 50})
        assert not ev.eval1(T.ParCmp(SizeVar("n"), "t"), {})

    def test_default_threshold_is_2_15(self):
        ev = Evaluator(sizes={"n": 2**15})
        assert ev.eval1(T.ParCmp(SizeVar("n"), "anything"), {})
        ev2 = Evaluator(sizes={"n": 2**15 - 1})
        assert not ev2.eval1(T.ParCmp(SizeVar("n"), "anything"), {})


@settings(max_examples=30)
@given(
    st.integers(1, 5),
    st.integers(1, 5),
    st.integers(0, 2**32 - 1),
)
def test_segmap_matches_nest_random(n, m, seed):
    rng = np.random.default_rng(seed)
    xss = rng.uniform(-10, 10, (n, m)).astype(np.float32)
    seg = T.SegMap(1, ctx2(), v("x") * 3.0 - 1.0)
    nest = map_(lambda row: map_(lambda x: x * 3.0 - 1.0, row), v("xss"))
    assert np.array_equal(EV.eval1(seg, {"xss": xss}), EV.eval1(nest, {"xss": xss}))
