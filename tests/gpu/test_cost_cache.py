"""Kernel-level cost memoization (docs/performance.md, layer 1)."""

import pytest

from repro import perf
from repro.bench.programs.locvolcalib import locvolcalib_program, locvolcalib_sizes
from repro.bench.programs.matmul import matmul_program, matmul_sizes
from repro.compiler import compile_program
from repro.gpu import K40, VEGA64
from repro.gpu.cost import kernel_fingerprint


@pytest.fixture(scope="module")
def matmul_if():
    return compile_program(matmul_program(), "incremental")


def _counter(name):
    return perf.counters().get(name, 0)


def _reports_equal(a, b):
    assert a.time == b.time
    assert a.host_time == b.host_time
    assert a.alloc_bytes == b.alloc_bytes
    assert len(a.kernels) == len(b.kernels)
    for ka, kb in zip(a.kernels, b.kernels):
        assert (ka.kind, ka.level, ka.time, ka.threads) == (
            kb.kind,
            kb.level,
            kb.time,
            kb.threads,
        )


class TestFingerprint:
    def test_separate_builds_get_distinct_fingerprints(self):
        # program builds gensym fresh names, so separate builds fingerprint
        # differently: the kernel cache shares work across the proposals /
        # datasets of ONE compiled program (which compile_program_cached
        # shares across pipelines), never across unrelated ASTs
        a = matmul_program().body
        b = matmul_program().body
        assert a is not b
        assert kernel_fingerprint(a) != kernel_fingerprint(b)

    def test_deterministic_for_one_compilation(self):
        cp = compile_program(matmul_program(), "incremental")
        assert kernel_fingerprint(cp.body) == kernel_fingerprint(cp.body)

    def test_different_programs_differ(self):
        a = compile_program(matmul_program(), "incremental")
        b = compile_program(locvolcalib_program(), "incremental")
        assert kernel_fingerprint(a.body) != kernel_fingerprint(b.body)

    def test_modes_differ(self):
        a = compile_program(matmul_program(), "incremental")
        b = compile_program(matmul_program(), "full")
        assert kernel_fingerprint(a.body) != kernel_fingerprint(b.body)

    def test_memoized_per_node(self):
        cp = compile_program(matmul_program(), "incremental")
        assert kernel_fingerprint(cp.body) is kernel_fingerprint(cp.body)


class TestKernelCache:
    def test_warm_run_hits_and_is_bit_identical(self, matmul_if):
        sizes = matmul_sizes(5, 20)
        cfg = {t: 2**15 for t in matmul_if.thresholds()}
        perf.clear_caches()
        perf.reset()
        matmul_if._sim_memo.clear()
        cold = matmul_if.simulate(sizes, K40, thresholds=cfg)
        misses = _counter("kernel_cache.misses")
        assert misses > 0
        # a fresh simulation (simulate memo bypassed) reuses every kernel
        matmul_if._sim_memo.clear()
        warm = matmul_if.simulate(sizes, K40, thresholds=cfg)
        assert _counter("kernel_cache.misses") == misses
        assert _counter("kernel_cache.hits") > 0
        _reports_equal(cold, warm)

    def test_irrelevant_threshold_does_not_invalidate(self, matmul_if):
        sizes = matmul_sizes(5, 20)
        cfg = {t: 2**15 for t in matmul_if.thresholds()}
        perf.clear_caches()
        perf.reset()
        matmul_if._sim_memo.clear()
        matmul_if.simulate(sizes, K40, thresholds=cfg)
        misses = _counter("kernel_cache.misses")
        # a threshold no kernel reads cannot change any kernel's cost key
        matmul_if._sim_memo.clear()
        matmul_if.simulate(sizes, K40, thresholds={**cfg, "unrelated_t": 7})
        assert _counter("kernel_cache.misses") == misses

    def test_device_is_part_of_the_key(self, matmul_if):
        sizes = matmul_sizes(5, 20)
        cfg = {t: 2**15 for t in matmul_if.thresholds()}
        perf.clear_caches()
        perf.reset()
        matmul_if._sim_memo.clear()
        matmul_if.simulate(sizes, K40, thresholds=cfg)
        misses = _counter("kernel_cache.misses")
        matmul_if._sim_memo.clear()
        matmul_if.simulate(sizes, VEGA64, thresholds=cfg)
        assert _counter("kernel_cache.misses") > misses

    def test_cache_disabled_matches_cached(self, matmul_if):
        sizes = matmul_sizes(7, 20)
        cfg = {t: 1 for t in matmul_if.thresholds()}
        perf.clear_caches()
        matmul_if._sim_memo.clear()
        plain = matmul_if.simulate(sizes, K40, thresholds=cfg, cache=False)
        cached1 = matmul_if.simulate(sizes, K40, thresholds=cfg, cache=True)
        matmul_if._sim_memo.clear()
        cached2 = matmul_if.simulate(sizes, K40, thresholds=cfg, cache=True)
        _reports_equal(plain, cached1)
        _reports_equal(plain, cached2)

    def test_local_mem_fallback_path_cached_soundly(self):
        """All-ones thresholds steer into intra versions, where §4.1's
        local-memory fallback (a cached LocalMemExceeded) decides paths."""
        cp = compile_program(locvolcalib_program(), "incremental")
        cfg = {t: 1 for t in cp.thresholds()}
        for device in (K40, VEGA64):
            for name in ("small", "medium", "large"):
                sizes = locvolcalib_sizes(name)
                perf.clear_caches()
                cp._sim_memo.clear()
                plain = cp.simulate(sizes, device, thresholds=cfg, cache=False)
                cp._sim_memo.clear()
                cold = cp.simulate(sizes, device, thresholds=cfg, cache=True)
                cp._sim_memo.clear()
                warm = cp.simulate(sizes, device, thresholds=cfg, cache=True)
                _reports_equal(plain, cold)
                _reports_equal(plain, warm)

    def test_no_cache_env_disables(self, matmul_if, monkeypatch):
        sizes = matmul_sizes(5, 20)
        cfg = {t: 2**15 for t in matmul_if.thresholds()}
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        perf.clear_caches()
        perf.reset()
        matmul_if._sim_memo.clear()
        matmul_if.simulate(sizes, K40, thresholds=cfg)
        matmul_if.simulate(sizes, K40, thresholds=cfg)
        assert _counter("kernel_cache.hits") == 0
        assert _counter("kernel_cache.misses") == 0
        assert _counter("sim_memo.hits") == 0
