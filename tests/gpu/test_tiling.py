"""Tiling legality analysis tests."""

from repro.gpu.tiling import tiling_factor


class TestTilingFactor:
    def test_invariant_operand_tiled(self):
        # operand varies only along level 0 of a 2-D kernel: invariant to
        # level 1 → shared by a tile of threads
        assert tiling_factor(frozenset({0}), [64, 64], 16) == 16.0

    def test_fully_variant_not_tiled(self):
        assert tiling_factor(frozenset({0, 1}), [64, 64], 16) == 1.0

    def test_broadcast_operand_tiled_in_1d(self):
        # free array in a 1-D kernel: invariant to the only dimension
        assert tiling_factor(frozenset(), [1024], 16) == 16.0

    def test_small_extent_no_tiling(self):
        # the invariant dimension has fewer threads than a tile
        assert tiling_factor(frozenset({0}), [64, 4], 16) == 1.0

    def test_no_dims_no_tiling(self):
        assert tiling_factor(frozenset(), [], 16) == 1.0

    def test_matmul_both_operands(self):
        dims = [512, 512]
        assert tiling_factor(frozenset({0}), dims, 16) == 16.0  # xs
        assert tiling_factor(frozenset({1}), dims, 16) == 16.0  # ys
