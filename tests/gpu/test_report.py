"""Cost-report data structure tests."""

from repro.gpu.report import Chain, CostReport, KernelStats


def _k(time=1e-6, gbytes=100.0, ops=10.0, local=0):
    return KernelStats(
        kind="segmap",
        level=1,
        threads=256,
        groups=1,
        group_size=256,
        waves=1,
        time=time,
        compute_bound=0,
        memory_bound=0,
        local_bound=0,
        latency_bound=0,
        gbytes=gbytes,
        ops=ops,
        local_mem_used=local,
    )


class TestChain:
    def test_add(self):
        a = Chain(ops=1, gbytes=2, lbytes=3, gacc=4, lacc=5, barriers=6)
        b = a.add(a)
        assert (b.ops, b.gbytes, b.lbytes, b.gacc, b.lacc, b.barriers) == (
            2, 4, 6, 8, 10, 12,
        )

    def test_scaled(self):
        a = Chain(ops=1, gbytes=2)
        b = a.scaled(3)
        assert b.ops == 3 and b.gbytes == 6
        assert a.ops == 1  # original untouched

    def test_default_zero(self):
        c = Chain()
        assert c.ops == c.gbytes == c.barriers == 0


class TestCostReport:
    def test_totals(self):
        rep = CostReport()
        rep.kernels = [_k(gbytes=100), _k(gbytes=50)]
        assert rep.total_gbytes == 150
        assert rep.num_kernels == 2

    def test_peak_local(self):
        rep = CostReport()
        rep.kernels = [_k(local=100), _k(local=300), _k(local=200)]
        assert rep.peak_local_mem == 300

    def test_peak_local_empty(self):
        assert CostReport().peak_local_mem == 0

    def test_merge(self):
        a = CostReport(time=1.0)
        a.kernels = [_k()]
        b = CostReport(time=2.0, host_time=0.5, transfer_bytes=10.0)
        b.kernels = [_k(), _k()]
        a.merge(b)
        assert a.time == 3.0
        assert a.host_time == 0.5
        assert a.transfer_bytes == 10.0
        assert a.num_kernels == 3
