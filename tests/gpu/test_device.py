"""Device model sanity checks against the datasheet-derived constants."""

from repro.gpu import K40, VEGA64


class TestDeviceSpecs:
    def test_k40_rates(self):
        assert 1e12 < K40.alu_rate < 5e12
        assert K40.mem_bw == 288e9
        assert K40.local_mem == 48 * 1024
        assert K40.max_group == 1024

    def test_vega_rates(self):
        assert 4e12 < VEGA64.alu_rate < 14e12
        assert VEGA64.mem_bw == 484e9
        assert VEGA64.local_mem == 64 * 1024
        assert VEGA64.max_group == 256  # paper §5.1

    def test_vega_relatively_memory_bound(self):
        """The property §5.2 uses to explain device-dependent choices."""
        assert VEGA64.ops_per_byte > K40.ops_per_byte

    def test_positive_latencies(self):
        for d in (K40, VEGA64):
            assert d.launch_s > 0
            assert d.mem_lat > d.local_lat > 0
            assert d.barrier_s > 0
            assert d.host_bw < d.mem_bw  # PCIe slower than DRAM


class TestCPU16Extension:
    """§3.2's future-work direction: a multicore with SIMD support."""

    def test_registered(self):
        from repro.gpu import CPU16

        assert CPU16.name == "CPU16"
        assert CPU16.full_occupancy < 100  # tens of threads saturate a CPU

    def test_thresholds_much_lower_than_gpu(self):
        from repro.bench.programs.matmul import matmul_program, matmul_sizes
        from repro.compiler import compile_program
        from repro.gpu import CPU16, K40
        from repro.tuning import exhaustive_tune

        cp = compile_program(matmul_program(), "incremental")
        train = [matmul_sizes(e, 20) for e in range(11)]
        th_cpu = exhaustive_tune(cp, train, CPU16).best_thresholds
        th_k40 = exhaustive_tune(cp, train, K40).best_thresholds
        # the outer-map t_top guard fires at far smaller sizes on the CPU
        outer = [t.name for t in cp.registry.items if t.kind == "suff_outer_par"]
        assert any(th_cpu[n] < th_k40[n] for n in outer)

    def test_simulation_runs(self):
        from repro.bench.programs.locvolcalib import (
            locvolcalib_program,
            locvolcalib_sizes,
        )
        from repro.compiler import compile_program
        from repro.gpu import CPU16

        cp = compile_program(locvolcalib_program(), "incremental")
        rep = cp.simulate(locvolcalib_sizes("small"), CPU16)
        assert rep.time > 0
