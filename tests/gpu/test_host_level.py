"""Host-level simulation semantics: sequencing, loops, conditionals,
materialisation kernels, and host-rate fallbacks."""

import pytest

from repro.compiler import compile_program
from repro.gpu import K40
from repro.gpu.cost import AArr, Simulator, aval_from_type
from repro.ir import source as S
from repro.ir.builder import (
    Program,
    f32,
    i64,
    if_,
    intrinsic,
    iota,
    let_,
    loop_,
    map_,
    replicate,
    size_e,
    v,
)
from repro.ir.types import BOOL, F32, I64, array_of
from repro.sizes import SizeVar

N = SizeVar("n")


def simulate(prog, sizes, mode="moderate", thresholds=None):
    cp = compile_program(prog, mode)
    return cp.simulate(sizes, K40, thresholds=thresholds)


class TestSequencing:
    def test_let_chain_sums_kernels(self):
        prog = Program(
            "p",
            [("xs", array_of(F32, N))],
            let_(
                map_(lambda x: x * 2.0, v("xs")),
                lambda ys: map_(lambda y: y + 1.0, ys),
            ),
        )
        # fusion would merge them; compile without it
        cp = compile_program(prog, "moderate", do_fuse=False)
        rep = cp.simulate({"n": 2**16}, K40)
        assert rep.num_kernels == 2
        assert rep.time >= 2 * K40.launch_s

    def test_host_loop_multiplies_time(self):
        def prog_with(steps):
            return Program(
                "p",
                [("xs", array_of(F32, N)), ("k", I64)],
                loop_(
                    [v("xs")], i64(steps),
                    lambda i, cur: map_(lambda x: x * 2.0, cur),
                ),
            )

        t2 = simulate(prog_with(2), {"n": 2**18, "k": 1}).time
        t8 = simulate(prog_with(8), {"n": 2**18, "k": 1}).time
        assert t8 == pytest.approx(4 * t2, rel=0.01)

    def test_loop_bound_from_sizes(self):
        prog = Program(
            "p",
            [("xs", array_of(F32, N)), ("numT", I64)],
            loop_(
                [v("xs")], v("numT"), lambda i, cur: map_(lambda x: x + 1.0, cur)
            ),
        )
        t1 = simulate(prog, {"n": 2**16, "numT": 1}).time
        t4 = simulate(prog, {"n": 2**16, "numT": 4}).time
        assert t4 == pytest.approx(4 * t1, rel=0.01)


class TestHostConditionals:
    def test_unknown_condition_charges_heavier_branch(self):
        # branches must agree in type; use a cheap vs expensive map
        prog = Program(
            "p",
            [("xs", array_of(F32, N)), ("flag", BOOL)],
            if_(
                v("flag"),
                map_(lambda x: x + 1.0, v("xs")),
                map_(
                    lambda x: S.UnOp("exp", S.UnOp("exp", x * 3.0) + x),
                    v("xs"),
                ),
            ),
        )
        rep = simulate(prog, {"n": 2**18})
        then_prog = Program("p", prog.params, map_(lambda x: x + 1.0, v("xs")))
        els_prog = Program(
            "p",
            prog.params,
            map_(lambda x: S.UnOp("exp", S.UnOp("exp", x * 3.0) + x), v("xs")),
        )
        t_then = simulate(then_prog, {"n": 2**18}).time
        t_els = simulate(els_prog, {"n": 2**18}).time
        assert rep.time == pytest.approx(max(t_then, t_els), rel=0.05)


class TestMaterialisation:
    def test_replicate_is_a_copy_kernel(self):
        prog = Program(
            "p",
            [("k", I64)],
            replicate(size_e("n"), f32(1.0)),
        )
        rep = simulate(prog, {"n": 2**20, "k": 0})
        assert rep.num_kernels == 1
        assert rep.kernels[0].kind == "replicate"

    def test_iota_materialises(self):
        prog = Program("p", [("k", I64)], iota(size_e("n")))
        rep = simulate(prog, {"n": 2**20, "k": 0})
        assert rep.num_kernels == 1


class TestHostFallbacks:
    def test_top_level_intrinsic_charged_at_host_rate(self):
        import repro.bench.references  # registers thomas_tridag

        prog = Program(
            "p",
            [("xs", array_of(F32, N))],
            intrinsic("thomas_tridag", v("xs")),
        )
        rep = simulate(prog, {"n": 2**20})
        assert rep.host_time > 0
        assert rep.time >= rep.host_time

    def test_host_time_not_double_counted(self):
        import repro.bench.references  # noqa: F401

        prog = Program(
            "p",
            [("xs", array_of(F32, N))],
            let_(
                intrinsic("thomas_tridag", v("xs")),
                lambda a: intrinsic("thomas_tridag", a),
            ),
        )
        one = Program(
            "p",
            [("xs", array_of(F32, N))],
            intrinsic("thomas_tridag", v("xs")),
        )
        t2 = simulate(prog, {"n": 2**20}).time
        t1 = simulate(one, {"n": 2**20}).time
        assert t2 == pytest.approx(2 * t1, rel=0.01)


class TestResultAvals:
    def test_simulator_exposes_results(self):
        prog = Program(
            "p",
            [("xs", array_of(F32, N))],
            map_(lambda x: x * 2.0, v("xs")),
        )
        cp = compile_program(prog, "moderate")
        sim = Simulator(K40)
        sim.simulate(cp.body, {"xs": aval_from_type(prog.params[0][1], {"n": 64})},
                     {"n": 64})
        (res,) = sim.result
        assert isinstance(res, AArr) and res.shape == (64,)
