"""Cost-model behavioural laws: the properties the crossovers rely on."""

import math

import pytest

from repro.compiler import compile_program
from repro.gpu import K40, VEGA64, Chain, Simulator, roofline_time
from repro.gpu.cost import AArr, AScal, aval_from_type, intra_local_demand
from repro.ir import target as T
from repro.ir.builder import Program, f32, map_, op2, redomap_, scan_, v
from repro.ir.types import F32, array_of
from repro.sizes import SizeVar

from repro.bench.programs.matmul import matmul_program, matmul_sizes


class TestRoofline:
    def test_launch_floor(self):
        t, _ = roofline_time(K40, Chain(), 1, 256, 1)
        assert t >= K40.launch_s

    def test_compute_bound_scales_with_work(self):
        c = Chain(ops=1000)
        t1, _ = roofline_time(K40, c, 10**6, 256, 4000)
        t2, _ = roofline_time(K40, c.scaled(2), 10**6, 256, 4000)
        assert t2 > t1

    def test_memory_bound_dominates_heavy_traffic(self):
        c = Chain(ops=1, gbytes=4000.0)
        _, bd = roofline_time(K40, c, 10**6, 256, 4000)
        assert bd["memory"] > bd["compute"]

    def test_underoccupancy_latency_bound(self):
        # one thread with a long chain is latency bound
        c = Chain(ops=10**6, gacc=10**6)
        _, bd = roofline_time(K40, c, 1, 32, 1)
        assert bd["latency"] > bd["compute"]
        assert bd["latency"] > bd["memory"]

    def test_more_parallelism_never_slower_constant_work(self):
        """Fixed total work spread over more threads: never slower."""
        total_ops = 2**22
        times = []
        for p_exp in range(0, 18, 2):
            p = 2**p_exp
            chain = Chain(ops=total_ops / p, gacc=total_ops / p / 32)
            t, _ = roofline_time(K40, chain, p, min(256, p), math.ceil(p / 256))
            times.append(t)
        for a, b in zip(times, times[1:]):
            assert b <= a * 1.01

    def test_serial_chain_separate_from_totals(self):
        total = Chain(ops=1000)
        serial = Chain(ops=10)
        t_coop, bd = roofline_time(K40, total, 100, 256, 100, serial_chain=serial)
        t_flat, bd2 = roofline_time(K40, total, 100, 256, 100)
        assert bd["latency"] < bd2["latency"]
        assert bd["compute"] == bd2["compute"]

    def test_device_ratio_memory_boundness(self):
        # Vega is relatively more memory-bound: ops/byte higher
        assert VEGA64.ops_per_byte > K40.ops_per_byte


class TestSimulatorBasics:
    def _sim(self, prog, sizes, device=K40, mode="moderate", **kw):
        cp = compile_program(prog, mode)
        return cp.simulate(sizes, device, **kw)

    def test_simple_map_kernel(self):
        n = SizeVar("n")
        prog = Program(
            "p", [("xs", array_of(F32, n))], map_(lambda x: x * 2.0, v("xs"))
        )
        rep = self._sim(prog, {"n": 4096})
        assert rep.num_kernels == 1
        k = rep.kernels[0]
        assert k.kind == "segmap" and k.threads == 4096
        # reads and writes 4 bytes each per element
        assert k.gbytes == pytest.approx(4096 * 8, rel=0.01)

    def test_bigger_dataset_costs_more(self):
        n = SizeVar("n")
        prog = Program(
            "p", [("xs", array_of(F32, n))], map_(lambda x: x * 2.0, v("xs"))
        )
        t1 = self._sim(prog, {"n": 2**16}).time
        t2 = self._sim(prog, {"n": 2**22}).time
        assert t2 > t1

    def test_scan_kernel_multiple_passes(self):
        n = SizeVar("n")
        prog = Program(
            "p", [("xs", array_of(F32, n))], scan_(op2("+"), f32(0.0), v("xs"))
        )
        rep = self._sim(prog, {"n": 2**20})
        (k,) = rep.kernels
        assert k.kind == "segscan"
        # ≥3 accesses per element (paper §5.2)
        assert k.gbytes >= 3 * 4 * 2**20

    def test_redomap_reads_inputs(self):
        n = SizeVar("n")
        prog = Program(
            "p",
            [("xs", array_of(F32, n)), ("ys", array_of(F32, n))],
            redomap_(op2("+"), lambda x, y: x * y, f32(0.0), v("xs"), v("ys")),
        )
        rep = self._sim(prog, {"n": 2**20})
        (k,) = rep.kernels
        assert k.kind == "segred"
        assert k.gbytes >= 2 * 4 * 2**20  # both operands once

    def test_zero_size_dataset(self):
        n, m = SizeVar("n"), SizeVar("m")
        prog = Program(
            "p",
            [("xss", array_of(F32, n, m))],
            map_(lambda r: map_(lambda x: x + 1.0, r), v("xss")),
        )
        rep = self._sim(prog, {"n": 0, "m": 4})
        assert rep.time == 0.0


class TestMatmulCrossover:
    """The mechanics behind Fig. 2."""

    def test_mf_catastrophic_on_degenerate(self):
        prog = matmul_program()
        mf = compile_program(prog, "moderate")
        ff = compile_program(prog, "full")
        s = matmul_sizes(0, 20)
        assert mf.simulate(s, K40).time > 50 * ff.simulate(s, K40).time

    def test_mf_wins_on_large(self):
        prog = matmul_program()
        mf = compile_program(prog, "moderate")
        ff = compile_program(prog, "full")
        s = matmul_sizes(10, 25)
        assert mf.simulate(s, K40).time < ff.simulate(s, K40).time

    def test_crossover_exists(self):
        prog = matmul_program()
        mf = compile_program(prog, "moderate")
        ff = compile_program(prog, "full")
        diffs = []
        for e in range(11):
            s = matmul_sizes(e, 25)
            diffs.append(mf.simulate(s, K40).time - ff.simulate(s, K40).time)
        # MF slower at the start, faster at the end
        assert diffs[0] > 0 and diffs[-1] < 0

    def test_tiling_reduces_traffic(self):
        prog = matmul_program()
        mf = compile_program(prog, "moderate")
        s = matmul_sizes(8, 25)
        with_t = mf.simulate(s, K40, enable_tiling=True)
        without = mf.simulate(s, K40, enable_tiling=False)
        assert with_t.total_gbytes < without.total_gbytes / 4


class TestLocalMemory:
    def test_intra_local_demand(self):
        ctx1 = T.Ctx([T.Binding(("row",), (v("xss"),), SizeVar("n"))])
        ctx0 = T.Ctx([T.Binding(("x",), (v("row"),), SizeVar("m"))])
        inner = T.SegScan(0, ctx0, op2("+"), [f32(0.0)], v("x"))
        outer = T.SegMap(1, ctx1, inner)
        assert intra_local_demand(outer, {"n": 10, "m": 1000}) == 4000

    def test_fallback_on_local_overflow(self):
        """A middle version that exceeds local memory falls back (§4.1)."""
        n, m = SizeVar("n"), SizeVar("m")
        prog = Program(
            "p",
            [("xss", array_of(F32, n, m))],
            map_(lambda row: scan_(op2("+"), f32(0.0), row), v("xss")),
        )
        cp = compile_program(prog, "incremental")
        # force the intra version everywhere
        th = {t.name: 1 if t.kind == "suff_intra_par" else 2**30
              for t in cp.registry.items}
        small = cp.simulate({"n": 64, "m": 256}, K40, thresholds=th)
        assert any(k.kind == "intra" for k in small.kernels)
        # huge rows cannot fit in local memory: fallback, no intra kernel
        big = cp.simulate({"n": 64, "m": 10**6}, K40, thresholds=th)
        assert not any(k.kind == "intra" for k in big.kernels)

    def test_intra_kernel_records_local_use(self):
        n, m = SizeVar("n"), SizeVar("m")
        prog = Program(
            "p",
            [("xss", array_of(F32, n, m))],
            map_(lambda row: scan_(op2("+"), f32(0.0), row), v("xss")),
        )
        cp = compile_program(prog, "incremental")
        th = {t.name: 1 if t.kind == "suff_intra_par" else 2**30
              for t in cp.registry.items}
        rep = cp.simulate({"n": 64, "m": 256}, K40, thresholds=th)
        intra = [k for k in rep.kernels if k.kind == "intra"]
        assert intra and intra[0].local_mem_used >= 256 * 4


class TestAbstractValues:
    def test_aval_from_type(self):
        t = array_of(F32, SizeVar("n"), 4)
        av = aval_from_type(t, {"n": 8})
        assert av == AArr((8, 4), 4)

    def test_scalar_aval(self):
        from repro.ir.types import I64

        av = aval_from_type(I64, {}, value=7)
        assert isinstance(av, AScal) and av.value == 7

    def test_arr_bytes(self):
        assert AArr((8, 4), 4).bytes == 128

    def test_peel(self):
        a = AArr((8, 4), 4, "local", frozenset({1}))
        row = a.peel()
        assert row == AArr((4,), 4, "local", frozenset({1}))
        assert isinstance(row.peel(), AScal)


class TestAllocationTracking:
    """§6: full flattening historically failed on memory usage; the
    simulator reports global allocations so the effect is visible."""

    def test_ff_allocates_more_than_outer_only(self):
        from repro.bench.programs.optionpricing import (
            optionpricing_program,
            optionpricing_sizes,
        )

        prog = optionpricing_program()
        s = optionpricing_sizes("D1")
        ff = compile_program(prog, "full").simulate(s, K40)
        top = compile_program(prog, "incremental")
        rep_top = top.simulate(
            s, K40, thresholds={t: 1 for t in top.thresholds()}
        )
        assert ff.alloc_bytes > 100 * max(rep_top.alloc_bytes, 1e6)

    def test_map_allocates_result(self):
        n = SizeVar("n")
        prog = Program(
            "p", [("xs", array_of(F32, n))], map_(lambda x: x * 2.0, v("xs"))
        )
        rep = compile_program(prog, "moderate").simulate({"n": 1024}, K40)
        assert rep.alloc_bytes == 1024 * 4

    def test_reduction_allocates_nothing_big(self):
        n = SizeVar("n")
        prog = Program(
            "p",
            [("xs", array_of(F32, n))],
            redomap_(op2("+"), lambda x: x * x, f32(0.0), v("xs")),
        )
        rep = compile_program(prog, "moderate").simulate({"n": 2**20}, K40)
        assert rep.alloc_bytes < 1024


class TestAbstractResultShapes:
    """The simulator's abstract results agree with real execution shapes —
    cross-validation of the whole abstract interpreter."""

    @pytest.mark.parametrize(
        "name,sizes",
        [
            ("matmul", dict(n=3, m=4)),
            ("locvolcalib", dict(numS=2, numX=3, numY=4, numT=2)),
            ("nn", dict(numB=3, numP=5)),
            ("pathfinder", dict(numB=2, rows=4, cols=5)),
            ("srad", dict(numB=2, H=4, W=3, numIter=2)),
        ],
    )
    def test_shapes_match_interpreter(self, name, sizes):
        import numpy as np

        from repro.gpu.cost import AArr, AScal, Simulator, aval_from_type
        from repro.interp import run_program
        from repro.ir.types import ArrayType

        from repro.bench.programs import (
            locvolcalib,
            matmul as mm,
            nn as nn_,
            pathfinder as pf,
            srad as sr,
        )

        progs = {
            "matmul": (mm.matmul_program, None),
            "locvolcalib": (
                locvolcalib.locvolcalib_program,
                locvolcalib.locvolcalib_inputs,
            ),
            "nn": (nn_.nn_program, nn_.nn_inputs),
            "pathfinder": (pf.pathfinder_program, pf.pathfinder_inputs),
            "srad": (sr.srad_program, sr.srad_inputs),
        }
        mk, mk_inputs = progs[name]
        prog = mk()
        if mk_inputs is None:
            rng = np.random.default_rng(0)
            inputs = {
                "xss": rng.standard_normal((3, 4)).astype(np.float32),
                "yss": rng.standard_normal((4, 3)).astype(np.float32),
            }
        else:
            inputs = mk_inputs(sizes)
        cp = compile_program(prog, "incremental")
        real = run_program(prog, inputs, body=cp.body, sizes=sizes)

        params = {}
        for pname, t in prog.params:
            value = None if isinstance(t, ArrayType) else sizes.get(pname)
            params[pname] = aval_from_type(t, sizes, value)
        sim = Simulator(K40)
        sim.simulate(cp.body, params, sizes)
        assert len(sim.result) == len(real)
        for av, val in zip(sim.result, real):
            if isinstance(av, AArr):
                assert av.shape == np.asarray(val).shape
            else:
                assert np.isscalar(val) or np.asarray(val).ndim == 0
