"""Tests for the symbolic size algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.sizes import (
    SizeConst,
    SizeMax,
    SizeProd,
    SizeSum,
    SizeVar,
    size,
    size_max,
    size_prod,
    size_sum,
)


class TestConstructors:
    def test_size_coercions(self):
        assert size(3) == SizeConst(3)
        assert size("n") == SizeVar("n")
        assert size(SizeVar("n")) == SizeVar("n")

    def test_size_rejects_negative(self):
        with pytest.raises(ValueError):
            size(-1)

    def test_size_rejects_bool(self):
        with pytest.raises(TypeError):
            size(True)

    def test_size_rejects_junk(self):
        with pytest.raises(TypeError):
            size(3.5)

    def test_prod_folds_constants(self):
        assert size_prod([2, 3, 4]) == SizeConst(24)

    def test_prod_zero_annihilates(self):
        assert size_prod([SizeVar("n"), 0]) == SizeConst(0)

    def test_prod_unit_dropped(self):
        assert size_prod([SizeVar("n"), 1]) == SizeVar("n")

    def test_prod_flattens_nested(self):
        p = size_prod([size_prod(["a", "b"]), "c"])
        assert isinstance(p, SizeProd)
        assert len(p.factors) == 3

    def test_prod_empty_is_one(self):
        assert size_prod([]) == SizeConst(1)

    def test_sum_folds_constants(self):
        assert size_sum([2, 3]) == SizeConst(5)

    def test_sum_zero_dropped(self):
        assert size_sum([SizeVar("n"), 0]) == SizeVar("n")

    def test_sum_flattens_nested(self):
        ssum = size_sum([size_sum(["a", 1]), "b", 2])
        assert isinstance(ssum, SizeSum)

    def test_sum_empty_is_zero(self):
        assert size_sum([]) == SizeConst(0)

    def test_max_dedups(self):
        m = size_max(["n", "n"])
        assert m == SizeVar("n")

    def test_max_folds_constants(self):
        m = size_max([3, 7, SizeVar("n")])
        assert isinstance(m, SizeMax)
        assert SizeConst(7) in m.args

    def test_max_single(self):
        assert size_max([SizeVar("n")]) == SizeVar("n")

    def test_max_empty_raises(self):
        with pytest.raises(ValueError):
            size_max([])


class TestEvaluation:
    def test_const(self):
        assert SizeConst(5).eval({}) == 5

    def test_var(self):
        assert SizeVar("n").eval({"n": 7}) == 7

    def test_var_unbound(self):
        with pytest.raises(KeyError):
            SizeVar("n").eval({})

    def test_prod(self):
        e = size_prod(["n", "m", 2])
        assert e.eval({"n": 3, "m": 4}) == 24

    def test_sum(self):
        e = size_sum(["n", 5])
        assert e.eval({"n": 3}) == 8

    def test_max(self):
        e = size_max(["n", "m"])
        assert e.eval({"n": 3, "m": 9}) == 9

    def test_operator_sugar(self):
        e = SizeVar("n") * SizeVar("m") + 1
        assert e.eval({"n": 2, "m": 5}) == 11


class TestStructure:
    def test_free_vars(self):
        e = size_prod(["n", size_sum(["m", 1])])
        assert e.free_vars() == {"n", "m"}

    def test_is_constant(self):
        assert size_prod([2, 3]).is_constant()
        assert not SizeVar("n").is_constant()

    def test_equality_and_hash(self):
        a = size_prod(["n", "m"])
        b = size_prod(["m", "n"])  # normalised ordering
        assert a == b
        assert hash(a) == hash(b)

    def test_str_round_trippable_reading(self):
        assert str(size_prod(["n", 2])) == "2*n"
        assert "max(" in str(size_max(["n", "m"]))


# -- property-based -----------------------------------------------------------

sizes_st = st.recursive(
    st.one_of(
        st.integers(min_value=0, max_value=50).map(SizeConst),
        st.sampled_from(["a", "b", "c"]).map(SizeVar),
    ),
    lambda inner: st.one_of(
        st.lists(inner, min_size=1, max_size=3).map(size_prod),
        st.lists(inner, min_size=1, max_size=3).map(size_sum),
        st.lists(inner, min_size=1, max_size=3).map(size_max),
    ),
    max_leaves=8,
)

ENV = {"a": 3, "b": 5, "c": 7}


@given(sizes_st, sizes_st)
def test_prod_eval_homomorphism(x, y):
    assert size_prod([x, y]).eval(ENV) == x.eval(ENV) * y.eval(ENV)


@given(sizes_st, sizes_st)
def test_sum_eval_homomorphism(x, y):
    assert size_sum([x, y]).eval(ENV) == x.eval(ENV) + y.eval(ENV)


@given(sizes_st, sizes_st)
def test_max_eval_homomorphism(x, y):
    assert size_max([x, y]).eval(ENV) == max(x.eval(ENV), y.eval(ENV))


@given(sizes_st, sizes_st, sizes_st)
def test_prod_associativity(x, y, z):
    left = size_prod([size_prod([x, y]), z])
    right = size_prod([x, size_prod([y, z])])
    assert left == right


@given(sizes_st, sizes_st)
def test_prod_commutativity(x, y):
    assert size_prod([x, y]) == size_prod([y, x])


@given(sizes_st)
def test_normalisation_idempotent(x):
    assert size_prod([x]) == size_prod([size_prod([x])])


@given(sizes_st)
def test_free_vars_cover_evaluation_needs(x):
    fv = x.free_vars()
    env = {v: ENV[v] for v in fv}
    x.eval(env)  # must not raise
