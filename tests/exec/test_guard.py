"""Guarded execution: demotion ladder, circuit breakers, spot verification.

Unit tests drive :func:`repro.exec.guard.wrap_kernel` with synthetic
rungs (deterministic, no compiler needed); integration tests inject
persistent ``exec.launch.*`` faults into the real codegen engine and
assert the results stay bit-identical to the scalar oracle.  The
persistence tests mirror ``tests/tuning/test_persist.py``'s staleness
matrix: a stale or torn breaker file is *discarded*, never an error.
"""

import json
import os

import numpy as np
import pytest

from repro import faults, perf
from repro.exec import CodegenEvaluator, compile_cache, guard
from repro.exec.codegen import _CODE_CACHE, CACHE_VERSION
from repro.interp import Evaluator
from repro.ir import source as S
from repro.ir.builder import map_, v


@pytest.fixture(autouse=True)
def _isolated_guard(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "kcache"))
    monkeypatch.delenv("REPRO_GUARD", raising=False)
    monkeypatch.delenv("REPRO_VERIFY_RATE", raising=False)
    monkeypatch.delenv("REPRO_GUARD_TRIP", raising=False)
    monkeypatch.delenv("REPRO_GUARD_COOLDOWN", raising=False)
    _CODE_CACHE.clear()
    guard.reset()
    yield
    guard.reset()


def _vals(x=1.0, n=4):
    return (np.full(n, x, dtype=np.float64),)


def _rung(result, fail=False):
    """A synthetic launch rung with call accounting."""
    calls = []

    def fn(env, n):
        calls.append(1)
        if fail:
            raise RuntimeError("injected rung failure")
        return result

    fn.calls = calls
    return fn


class TestDemotionLadder:
    def test_healthy_top_rung_serves(self):
        top, low = _rung(_vals(1.0)), _rung(_vals(1.0))
        launch = guard.wrap_kernel("k1", [("codegen", top), ("scalar", low)])
        assert launch._guard_wrapped
        out = launch({}, 4)
        assert out[0][0] == 1.0
        assert len(top.calls) == 1 and len(low.calls) == 0
        assert guard.demotion_count() == 0

    def test_failure_demotes_one_rung(self):
        top, low = _rung(None, fail=True), _rung(_vals(2.0))
        before = perf.counters().get("exec.guard.demotions", 0)
        launch = guard.wrap_kernel("k2", [("codegen", top), ("scalar", low)])
        out = launch({}, 4)
        assert out[0][0] == 2.0
        assert len(top.calls) == 1 and len(low.calls) == 1
        assert guard.demotion_count() == 1
        assert perf.counters()["exec.guard.demotions"] == before + 1
        assert perf.counters().get("exec.guard.demotions.codegen", 0) >= 1

    def test_not_eligible_declines_without_breaker(self):
        def decline(env, n):
            return guard.NOT_ELIGIBLE

        low = _rung(_vals(3.0))
        launch = guard.wrap_kernel("k3", [("native", decline), ("scalar", low)])
        for _ in range(10):
            assert launch({}, 4)[0][0] == 3.0
        assert guard.demotion_count() == 0
        assert guard.snapshot()["breakers"] == []

    def test_last_rung_propagates(self):
        bad = _rung(None, fail=True)
        launch = guard.wrap_kernel("k4", [("codegen", bad), ("scalar", bad)])
        with pytest.raises(RuntimeError):
            launch({}, 4)

    def test_injected_oom_fault_demotes(self):
        top, low = _rung(_vals(1.0)), _rung(_vals(1.0))
        launch = guard.wrap_kernel("k5", [("codegen", top), ("scalar", low)])
        plan = faults.FaultPlan(seed=0, rules=(
            faults.FaultRule(site="exec.launch.codegen", kind="oom", p=1.0),
        ))
        with faults.injected(plan):
            out = launch({}, 4)
        assert out[0][0] == 1.0
        assert len(top.calls) == 0  # faulted before the rung ran
        assert len(low.calls) == 1
        assert guard.demotion_count() == 1


class TestBreaker:
    def test_trips_after_threshold_then_quarantines(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD_TRIP", "2")
        monkeypatch.setenv("REPRO_GUARD_COOLDOWN", "100")
        top, low = _rung(None, fail=True), _rung(_vals(1.0))
        launch = guard.wrap_kernel("kb", [("codegen", top), ("scalar", low)])
        launch({}, 4)
        launch({}, 4)  # second failure: trip
        snap = guard.snapshot()
        (br,) = snap["breakers"]
        assert br["state"] == "open" and br["trips"] == 1
        assert guard.demotion_active()
        before = len(top.calls)
        quarantined0 = perf.counters().get("exec.guard.quarantined", 0)
        launch({}, 4)  # quarantined: rung skipped outright
        assert len(top.calls) == before
        assert perf.counters()["exec.guard.quarantined"] == quarantined0 + 1

    def test_half_open_probe_recloses_on_success(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD_TRIP", "1")
        monkeypatch.setenv("REPRO_GUARD_COOLDOWN", "2")
        state = {"fail": True}
        low = _rung(_vals(1.0))

        def flaky(env, n):
            if state["fail"]:
                raise RuntimeError("down")
            return _vals(9.0)

        launch = guard.wrap_kernel("kh", [("codegen", flaky), ("scalar", low)])
        launch({}, 4)  # trip (threshold 1)
        assert guard.snapshot()["breakers"][0]["state"] == "open"
        launch({}, 4)  # skip 1
        state["fail"] = False  # tier heals while quarantined
        out = launch({}, 4)  # skip 2 -> half-open probe succeeds
        assert out[0][0] == 9.0
        (br,) = guard.snapshot()["breakers"]
        assert br["state"] == "closed" and br["probes"] == 1
        assert not guard.demotion_active()
        assert perf.counters().get("exec.guard.reclosed", 0) >= 1

    def test_half_open_probe_reopens_on_failure(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD_TRIP", "1")
        monkeypatch.setenv("REPRO_GUARD_COOLDOWN", "2")
        top, low = _rung(None, fail=True), _rung(_vals(1.0))
        launch = guard.wrap_kernel("kr", [("codegen", top), ("scalar", low)])
        launch({}, 4)  # trip
        launch({}, 4)  # skip 1
        launch({}, 4)  # skip 2 -> probe fails -> re-open
        (br,) = guard.snapshot()["breakers"]
        assert br["state"] == "open" and br["skips"] == 0  # cooldown restarted
        assert perf.counters().get("exec.guard.reopened", 0) >= 1

    def test_intermittent_failure_heals_without_trip(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD_TRIP", "3")
        state = {"fail": True}
        low = _rung(_vals(1.0))

        def flaky(env, n):
            if state["fail"]:
                raise RuntimeError("blip")
            return _vals(5.0)

        launch = guard.wrap_kernel("ki", [("codegen", flaky), ("scalar", low)])
        launch({}, 4)  # one failure
        state["fail"] = False
        launch({}, 4)  # success clears the consecutive-fail count
        state["fail"] = True
        launch({}, 4)
        launch({}, 4)  # still only 2 consecutive: no trip
        snap = guard.snapshot()
        assert all(b["state"] == "closed" for b in snap["breakers"])


class TestVerify:
    def test_sampling_density(self):
        guard.set_verify_rate(0.25)
        due = sum(guard._verify_due("ks") for _ in range(100))
        assert due == 25
        guard.set_verify_rate(0.0)
        assert not guard._verify_due("ks")

    def test_divergence_returns_oracle_and_lands_corpus(
        self, tmp_path, monkeypatch
    ):
        corpus = tmp_path / "corpus"
        monkeypatch.setenv("REPRO_CORPUS_DIR", str(corpus))
        guard.set_verify_rate(1.0)
        wrong = _rung(_vals(666.0))
        oracle = _rung(_vals(1.0))
        low = _rung(_vals(1.0))
        launch = guard.wrap_kernel(
            "kv-div", [("codegen", wrong), ("vector", oracle), ("scalar", low)],
            source="def _kernel(env, n): ...",
        )
        env = {"xs": np.arange(4.0)}
        out = launch(env, 4)
        assert out[0][0] == 1.0  # the oracle's values are the semantics
        assert perf.counters().get("exec.guard.verify_divergence", 0) >= 1
        (doc_path,) = list(corpus.glob("guard_*.json"))
        doc = json.loads(doc_path.read_text())
        assert doc["kind"] == "guard-divergence"
        assert doc["tier"] == "codegen"
        assert doc["source"].startswith("def _kernel")
        assert doc["inputs"]["xs"]["data"] == [0.0, 1.0, 2.0, 3.0]
        # a divergence is a launch failure: the breaker saw it
        (br,) = guard.snapshot()["breakers"]
        assert br["fails"] >= 1 or br["state"] != "closed"

    def test_matching_verification_passes_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORPUS_DIR", "/nonexistent-unused")
        guard.set_verify_rate(1.0)
        top = _rung(_vals(1.0))
        oracle = _rung(_vals(1.0))
        launch = guard.wrap_kernel(
            "kv-ok", [("codegen", top), ("vector", oracle), ("scalar", oracle)]
        )
        out = launch({}, 4)
        assert out[0][0] == 1.0
        assert len(oracle.calls) == 1  # ran once, as the oracle
        assert perf.counters().get("exec.guard.verified", 0) >= 1
        assert guard.demotion_count() == 0

    def test_corpus_docs_are_ignored_by_recipe_loader(self, tmp_path):
        from repro.check.fuzz import load_corpus

        (tmp_path / "guard_deadbeef_codegen.json").write_text(json.dumps(
            {"kind": "guard-divergence", "key": "deadbeef"}
        ))
        (tmp_path / "real_recipe.json").write_text(json.dumps(
            {"sizes": {"n": 2}, "body": {"k": "xs"}}
        ))
        assert [name for name, _ in load_corpus(tmp_path)] == ["real_recipe"]


class TestPersistence:
    def _trip(self, monkeypatch, key="kp"):
        monkeypatch.setenv("REPRO_GUARD_TRIP", "1")
        top, low = _rung(None, fail=True), _rung(_vals(1.0))
        launch = guard.wrap_kernel(key, [("codegen", top), ("scalar", low)])
        launch({}, 4)
        return launch

    def test_trip_persists_and_reload_resumes(self, monkeypatch):
        self._trip(monkeypatch)
        path = compile_cache.breaker_path()
        doc = json.loads(open(path).read())
        assert doc["kind"] == "guard-breakers"
        assert doc["cache_version"] == CACHE_VERSION
        assert doc["device"] == guard.device_sig()
        assert doc["breakers"][0]["state"] == "open"
        # a fresh process (reset without dropping disk) resumes the state
        guard.reset()
        assert guard.load() == 1
        assert guard.demotion_active()
        assert perf.counters().get("exec.guard.breaker_resumed", 0) >= 1

    def test_breaker_file_survives_cache_eviction_and_clear(
        self, monkeypatch
    ):
        self._trip(monkeypatch)
        path = compile_cache.breaker_path()
        monkeypatch.setenv("REPRO_CODEGEN_CACHE_MAX", "1")
        for i in range(4):
            fp = f"fp-{i}"
            compile_cache.store(compile_cache.entry_key(fp), fp, {"i": i})
        assert os.path.exists(path)  # never LRU-evicted
        compile_cache.clear()
        assert os.path.exists(path)  # and not dropped by clear()

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.update(cache_version=d["cache_version"] + 1),
            lambda d: d.update(device="riscv128-py9.9"),
            lambda d: d.update(format=99),
            lambda d: d.update(kind="something-else"),
        ],
        ids=["cache_version", "device", "format", "kind"],
    )
    def test_stale_file_discarded_not_errored(self, monkeypatch, mutate):
        self._trip(monkeypatch)
        path = compile_cache.breaker_path()
        doc = json.loads(open(path).read())
        mutate(doc)
        with open(path, "w") as fh:
            json.dump(doc, fh)
        guard.reset()
        before = perf.counters().get("exec.guard.breaker_stale", 0)
        assert guard.load() == 0  # discarded, no exception
        assert perf.counters()["exec.guard.breaker_stale"] == before + 1
        assert not guard.demotion_active()

    def test_torn_file_discarded(self, monkeypatch):
        self._trip(monkeypatch)
        path = compile_cache.breaker_path()
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        guard.reset()
        assert guard.load() == 0
        assert guard.snapshot()["breakers"] == []

    def test_missing_file_starts_clean(self):
        assert guard.load() == 0
        assert guard.snapshot()["breakers"] == []

    def test_flush_writes_probe_outcome(self, monkeypatch):
        # a half-open probe that *closes* a breaker persists eagerly, but
        # a plain fail-count change only reaches disk via flush (the
        # daemon calls it in its drain path)
        monkeypatch.setenv("REPRO_GUARD_TRIP", "5")
        top, low = _rung(None, fail=True), _rung(_vals(1.0))
        launch = guard.wrap_kernel("kf", [("codegen", top), ("scalar", low)])
        launch({}, 4)  # fails=1, below threshold: no transition, no write
        assert not os.path.exists(compile_cache.breaker_path())
        guard.flush()
        doc = json.loads(open(compile_cache.breaker_path()).read())
        assert doc["breakers"][0]["fails"] == 1


class TestCodegenIntegration:
    def _chain(self):
        return map_(lambda x: S.UnOp("abs", x * 2.0 + 1.0 - x * 0.5), v("xs"))

    def _xs(self, n=6):
        return np.linspace(-2.0, 3.0, n).astype(np.float32)

    def test_persistent_launch_faults_stay_bit_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD_TRIP", "1")
        e, xs = self._chain(), self._xs()
        ref = Evaluator().eval(e, {"xs": xs})
        plan = faults.FaultPlan(seed=1, rules=(
            faults.FaultRule(site="exec.launch.codegen", kind="launch", p=1.0),
        ))
        with faults.injected(plan):
            got = CodegenEvaluator().eval(e, {"xs": xs})
        assert np.asarray(ref[0]).tobytes() == np.asarray(got[0]).tobytes()
        assert guard.demotion_count() > 0
        assert guard.demotion_active()  # breakers tripped to open

    def test_device_lost_fault_kind_demotes_identically(self):
        e, xs = self._chain(), self._xs()
        ref = Evaluator().eval(e, {"xs": xs})
        plan = faults.FaultPlan(seed=2, rules=(
            faults.FaultRule(
                site="exec.launch.*", kind="device_lost", p=1.0, max_fires=4
            ),
        ))
        with faults.injected(plan):
            got = CodegenEvaluator().eval(e, {"xs": xs})
        assert np.asarray(ref[0]).tobytes() == np.asarray(got[0]).tobytes()

    def test_guard_off_is_a_passthrough(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD", "0")
        e, xs = self._chain(), self._xs()
        ref = Evaluator().eval(e, {"xs": xs})
        got = CodegenEvaluator().eval(e, {"xs": xs})
        assert np.asarray(ref[0]).tobytes() == np.asarray(got[0]).tobytes()
        assert guard.demotion_count() == 0
        assert guard.snapshot()["breakers"] == []

    def test_spot_verification_passes_on_healthy_engine(self):
        guard.set_verify_rate(1.0)
        e, xs = self._chain(), self._xs()
        before = perf.counters().get("exec.guard.verified", 0)
        div0 = perf.counters().get("exec.guard.verify_divergence", 0)
        got = CodegenEvaluator().eval(e, {"xs": xs})
        ref = Evaluator().eval(e, {"xs": xs})
        assert np.asarray(ref[0]).tobytes() == np.asarray(got[0]).tobytes()
        assert perf.counters().get("exec.guard.verified", 0) > before
        assert perf.counters().get("exec.guard.verify_divergence", 0) == div0
