"""On-disk compile cache: integrity, LRU bounds, cross-process sharing.

The cache is the contract that lets ``tuning/parallel.py`` spawn workers
(and repeated CLI invocations) share kernel compilations.  These tests
cover the satellite requirements directly: a torn/truncated entry falls
back to recompilation (never a crash), a poisoned entry (fingerprint or
checksum mismatch) is rejected, the directory is LRU-bounded, and two
spawn-based worker processes executing the same program record exactly
one compile between them.
"""

import json
import multiprocessing
import os
import shutil

import numpy as np
import pytest

from repro import perf
from repro.exec import CodegenEvaluator, compile_cache
from repro.exec.codegen import _CODE_CACHE
from repro.interp import Evaluator
from repro.ir import source as S
from repro.ir.builder import map_, v


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "kcache"))
    _CODE_CACHE.clear()
    yield


def _chain():
    return map_(lambda x: S.UnOp("abs", x * 2.0 + 1.0 - x * 0.5), v("xs"))


def _xs(n=4):
    return np.linspace(-2.0, 3.0, n).astype(np.float32)


def _eval_codegen(e, xs):
    return CodegenEvaluator().eval(e, {"xs": xs})


def _entry_files():
    d = compile_cache.cache_dir()
    return sorted(f for f in os.listdir(d) if f.endswith(".json"))


class TestEntryIntegrity:
    def test_round_trip(self):
        key = compile_cache.entry_key("fp-A")
        payload = {"engine": "codegen", "source": "def _kernel(env, n): pass"}
        assert compile_cache.store(key, "fp-A", payload)
        assert compile_cache.load(key, "fp-A") == payload

    def test_torn_entry_recompiles_not_crashes(self):
        e = _chain()
        _eval_codegen(e, _xs())
        (name,) = _entry_files()
        path = os.path.join(compile_cache.cache_dir(), name)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])  # torn write
        _CODE_CACHE.clear()
        before = perf.counters()
        ref = Evaluator().eval(e, {"xs": _xs(6)})
        got = _eval_codegen(e, _xs(6))
        assert np.asarray(ref[0]).tobytes() == np.asarray(got[0]).tobytes()
        after = perf.counters()
        assert after.get("exec.codegen.cache_bad", 0) > before.get(
            "exec.codegen.cache_bad", 0
        )
        assert after.get("exec.codegen.compile", 0) > before.get(
            "exec.codegen.compile", 0
        )

    def test_fingerprint_mismatch_rejected(self):
        # poisoning: an entry copied under a different key must not load
        key_a = compile_cache.entry_key("fp-A")
        key_b = compile_cache.entry_key("fp-B")
        compile_cache.store(key_a, "fp-A", {"engine": "codegen", "src": "x"})
        d = compile_cache.cache_dir()
        shutil.copy(
            os.path.join(d, key_a + ".json"), os.path.join(d, key_b + ".json")
        )
        before = perf.counters().get("exec.codegen.cache_bad", 0)
        assert compile_cache.load(key_b, "fp-B") is None
        assert perf.counters().get("exec.codegen.cache_bad", 0) > before

    def test_payload_tamper_rejected(self):
        key = compile_cache.entry_key("fp-A")
        compile_cache.store(key, "fp-A", {"engine": "codegen", "src": "x"})
        path = os.path.join(compile_cache.cache_dir(), key + ".json")
        doc = json.load(open(path))
        doc["payload"]["src"] = "import os  # oops"
        json.dump(doc, open(path, "w"))
        assert compile_cache.load(key, "fp-A") is None

    def test_no_cache_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        key = compile_cache.entry_key("fp-A")
        assert not compile_cache.store(key, "fp-A", {"x": 1})
        assert compile_cache.load(key, "fp-A") is None


class TestLRUBound:
    def test_eviction_beyond_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN_CACHE_MAX", "3")
        for i in range(6):
            fp = f"fp-{i}"
            compile_cache.store(compile_cache.entry_key(fp), fp, {"i": i})
        assert len(_entry_files()) <= 3
        assert perf.counters().get("exec.codegen.cache_evictions", 0) >= 3

    def test_reads_refresh_lru_order(self, monkeypatch):
        import time

        monkeypatch.setenv("REPRO_CODEGEN_CACHE_MAX", "2")
        fps = ["fp-0", "fp-1"]
        for fp in fps:
            compile_cache.store(compile_cache.entry_key(fp), fp, {"fp": fp})
        time.sleep(0.02)
        compile_cache.load(compile_cache.entry_key("fp-0"), "fp-0")  # touch
        time.sleep(0.02)
        compile_cache.store(compile_cache.entry_key("fp-2"), "fp-2", {"fp": "fp-2"})
        names = _entry_files()
        assert compile_cache.entry_key("fp-0") + ".json" in names  # survived
        assert compile_cache.entry_key("fp-1") + ".json" not in names  # evicted

    def test_native_artifacts_evicted_with_entry(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN_CACHE_MAX", "1")
        d = compile_cache.shared_dir()
        key0 = compile_cache.entry_key("fp-0")
        compile_cache.store(key0, "fp-0", {"i": 0})
        for suffix in (".c", ".so"):
            open(os.path.join(d, key0 + suffix), "w").write("stub")
        import time

        time.sleep(0.02)
        compile_cache.store(compile_cache.entry_key("fp-1"), "fp-1", {"i": 1})
        leftovers = [f for f in os.listdir(d) if f.startswith(key0)]
        assert leftovers == []


# -- cross-process sharing ---------------------------------------------------
#
# Module-level worker so "spawn" children can import it by qualified name
# (the same constraint tuning/parallel.py workers live under).


def _worker_eval(cache_dir: str) -> dict:
    from repro import perf as wperf
    from repro.exec import CodegenEvaluator as WEvaluator
    from repro.exec import compile_cache as wcache
    from repro.ir import source as WS
    from repro.ir.builder import map_ as wmap
    from repro.ir.builder import v as wv

    # exactly what tuning/parallel.py's _init_worker does with the
    # coordinator-shipped directory
    wcache.set_dir(cache_dir)
    e = wmap(lambda x: WS.UnOp("abs", x * 2.0 + 1.0 - x * 0.5), wv("xs"))
    xs = np.linspace(-2.0, 3.0, 5).astype(np.float32)
    WEvaluator().eval(e, {"xs": xs})
    return dict(wperf.export()["counters"])


def _so_deleter(cache_dir: str, iters: int) -> None:
    """Concurrent LRU-eviction stand-in: repeatedly remove ``.so``/``.c``
    siblings while another process is probing and dlopening them."""
    import glob
    import time

    for _ in range(iters):
        for f in glob.glob(os.path.join(cache_dir, "*.so")) + glob.glob(
            os.path.join(cache_dir, "*.c")
        ):
            try:
                os.unlink(f)
            except OSError:
                pass
        time.sleep(0.001)


class TestNativeEvictionRace:
    """Satellite: a concurrent eviction of a ``.so`` between the reuse
    probe and ``dlopen`` must recompile, not drop to Python forever."""

    INFO = {
        "lines": [("load", "x0", "xs"), ("bin", "x1", "*", "x0", "x0")],
        "out": "x1",
        "consts": [],
    }

    def _native(self, monkeypatch):
        from repro.exec import native

        if native.toolchain() is None:
            pytest.skip("no C toolchain on PATH")
        monkeypatch.setenv("REPRO_NATIVE", "1")
        return native

    def test_torn_so_after_probe_rebuilds(self, monkeypatch):
        native = self._native(monkeypatch)
        key = compile_cache.entry_key("fp-native-race")
        # a torn .so (e.g. from a writer killed mid-copy) passes the
        # existence probe but fails dlopen — prepare must force-rebuild
        so = os.path.join(compile_cache.shared_dir(), key + ".so")
        with open(so, "wb") as fh:
            fh.write(b"not an ELF object")
        before = perf.counters().get("exec.codegen.native_rebuilds", 0)
        run = native.prepare(key, self.INFO)
        assert run is not None  # recovered by forced recompilation
        assert perf.counters()["exec.codegen.native_rebuilds"] == before + 1
        xs = np.asarray([1.5, -2.0, 3.0], dtype=np.float64)
        out = run([xs], 3)
        assert out.tobytes() == (xs * xs).tobytes()

    def test_vanished_so_recompiles(self, monkeypatch):
        native = self._native(monkeypatch)
        key = compile_cache.entry_key("fp-native-gone")
        assert native.prepare(key, self.INFO) is not None
        os.unlink(os.path.join(compile_cache.shared_dir(), key + ".so"))
        compiles = perf.counters().get("exec.codegen.native_compile", 0)
        assert native.prepare(key, self.INFO) is not None
        assert perf.counters()["exec.codegen.native_compile"] == compiles + 1

    def test_two_process_eviction_race_stays_bit_identical(self, monkeypatch):
        self._native(monkeypatch)
        e = _chain()
        xs = np.asarray([-1.5, 2.25, 3.5, -0.75, 0.5], dtype=np.float64)
        ref = np.asarray(Evaluator().eval(e, {"xs": xs})[0]).tobytes()
        ctx = multiprocessing.get_context("spawn")
        deleter = ctx.Process(
            target=_so_deleter, args=(compile_cache.shared_dir(), 400)
        )
        deleter.start()
        try:
            for _ in range(8):
                _CODE_CACHE.clear()  # force re-install (re-probe + dlopen)
                got = _eval_codegen(e, xs)
                assert np.asarray(got[0]).tobytes() == ref
        finally:
            deleter.join(timeout=30)
            if deleter.is_alive():
                deleter.terminate()


class TestCrossProcessSharing:
    def test_two_spawn_workers_one_compile(self, tmp_path):
        cache_dir = str(tmp_path / "shared-kcache")
        os.makedirs(cache_dir, exist_ok=True)
        ctx = multiprocessing.get_context("spawn")
        merged: dict = {}
        for _ in range(2):  # two distinct worker processes, sequentially
            with ctx.Pool(processes=1) as pool:
                counters = pool.apply(_worker_eval, (cache_dir,))
            for k, val in counters.items():
                merged[k] = merged.get(k, 0) + val
        assert merged.get("exec.codegen.compile", 0) == 1
        assert merged.get("exec.codegen.cache_hits", 0) >= 1

    def test_init_worker_pins_cache_dir(self, tmp_path):
        from repro.bench.programs.matmul import matmul_program
        from repro.compiler import compile_program
        from repro.gpu.device import K40
        from repro.tuning.parallel import _init_worker

        cp = compile_program(matmul_program(), "incremental")
        target = str(tmp_path / "worker-kcache")
        try:
            _init_worker(
                cp,
                [dict(n=4, m=4)],
                K40,
                0,
                0.0,
                None,
                codegen_cache=target,
            )
            assert compile_cache.cache_dir() == target
        finally:
            compile_cache.set_dir(None)
