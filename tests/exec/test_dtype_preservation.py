"""Dtype preservation across every scalar op, on both engines.

Historically ``to_i32``/``to_i64`` round-tripped through Python ``int``
(losing the numpy dtype entirely) and ``exp``/``log``/``sqrt`` only
preserved the dtype of ``np.floating`` inputs.  Both executors now share
the ``_cast``/``_preserve_dtype`` helpers, so the result dtype of every
``_BINOPS``/``_UNOPS`` entry is a function of the *operator* and the input
dtype alone — never of which engine ran it.
"""

import numpy as np
import pytest

from repro.exec import VectorEvaluator
from repro.interp import Evaluator
from repro.interp.evaluator import _BINOPS, _UNOPS
from repro.ir import source as S
from repro.ir.builder import map_, v

DTYPES = {
    "i32": np.int32,
    "i64": np.int64,
    "f32": np.float32,
    "f64": np.float64,
}

#: ops returning bool regardless of the operand dtype
_BOOL_BINOPS = {"==", "!=", "<", "<=", ">", ">=", "&&", "||"}
#: ops with a fixed target dtype
_CAST_UNOPS = {
    "to_f32": np.float32,
    "to_f64": np.float64,
    "to_i32": np.int32,
    "to_i64": np.int64,
}

SCALAR = Evaluator()


def _sample(dtype, op=None):
    # positive and away from 0/1 so exp/log/sqrt/pow/% are all defined
    return dtype.type(3) if np.issubdtype(dtype, np.integer) else dtype.type(2.25)


def _expected_dtype(op, dtype, unary):
    if not unary and op in _BOOL_BINOPS:
        return np.dtype(bool)
    if unary and op == "not":
        return np.dtype(bool)
    if unary and op in _CAST_UNOPS:
        return np.dtype(_CAST_UNOPS[op])
    if not unary and op == "/" and np.issubdtype(dtype, np.integer):
        return dtype  # integer division stays integral
    return dtype


def _scalar_result(op, dtype, unary):
    x = _sample(np.dtype(dtype))
    if unary:
        e = S.UnOp(op, S.Var("x"))
        if op == "not":
            return SCALAR.eval1(e, {"x": np.bool_(True)})
        return SCALAR.eval1(e, {"x": x})
    e = S.BinOp(op, S.Var("x"), S.Var("y"))
    if op in ("&&", "||"):
        return SCALAR.eval1(e, {"x": np.bool_(True), "y": np.bool_(False)})
    return SCALAR.eval1(e, {"x": x, "y": x})


def _vector_result(op, dtype, unary):
    dt = np.dtype(dtype)
    if unary:
        e = map_(lambda x: S.UnOp(op, x), v("xs"))
        if op == "not":
            xs = np.asarray([True, False])
        else:
            xs = np.full(3, _sample(dt), dtype=dt)
        return VectorEvaluator().eval(e, {"xs": xs})[0]
    e = map_(lambda x, y: S.BinOp(op, x, y), v("xs"), v("ys"))
    if op in ("&&", "||"):
        xs = np.asarray([True, False])
        ys = np.asarray([False, True])
    else:
        xs = ys = np.full(3, _sample(dt), dtype=dt)
    return VectorEvaluator().eval(e, {"xs": xs, "ys": ys})[0]


@pytest.mark.parametrize("dtype", sorted(DTYPES))
@pytest.mark.parametrize("op", sorted(_BINOPS))
def test_binop_dtype_scalar(op, dtype):
    if op in ("&&", "||") or (op == "not"):
        expected = np.dtype(bool)
    else:
        expected = _expected_dtype(op, np.dtype(DTYPES[dtype]), unary=False)
    out = _scalar_result(op, DTYPES[dtype], unary=False)
    assert np.asarray(out).dtype == expected, (op, dtype, np.asarray(out).dtype)


@pytest.mark.parametrize("dtype", sorted(DTYPES))
@pytest.mark.parametrize("op", sorted(_UNOPS))
def test_unop_dtype_scalar(op, dtype):
    expected = _expected_dtype(op, np.dtype(DTYPES[dtype]), unary=True)
    out = _scalar_result(op, DTYPES[dtype], unary=True)
    assert np.asarray(out).dtype == expected, (op, dtype, np.asarray(out).dtype)


@pytest.mark.parametrize("dtype", sorted(DTYPES))
@pytest.mark.parametrize("op", sorted(_BINOPS))
def test_binop_dtype_vector(op, dtype):
    if op in ("&&", "||"):
        expected = np.dtype(bool)
    else:
        expected = _expected_dtype(op, np.dtype(DTYPES[dtype]), unary=False)
    out = _vector_result(op, DTYPES[dtype], unary=False)
    assert np.asarray(out).dtype == expected, (op, dtype, np.asarray(out).dtype)


@pytest.mark.parametrize("dtype", sorted(DTYPES))
@pytest.mark.parametrize("op", sorted(_UNOPS))
def test_unop_dtype_vector(op, dtype):
    expected = _expected_dtype(op, np.dtype(DTYPES[dtype]), unary=True)
    out = _vector_result(op, DTYPES[dtype], unary=True)
    assert np.asarray(out).dtype == expected, (op, dtype, np.asarray(out).dtype)


@pytest.mark.parametrize("dtype", sorted(DTYPES))
@pytest.mark.parametrize("op", sorted(_UNOPS))
def test_unop_engines_agree_bitwise(op, dtype):
    ref = np.asarray(_scalar_result(op, DTYPES[dtype], unary=True))
    got = np.asarray(_vector_result(op, DTYPES[dtype], unary=True))[0]
    got = np.asarray(got)
    assert ref.dtype == got.dtype
    assert ref.tobytes() == got.tobytes()
