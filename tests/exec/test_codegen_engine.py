"""Codegen executor: emitted kernels, masked lowerings, plumbing.

The heavy parity proof lives in ``tests/check/test_differential.py`` (every
forced path of every benchmark runs under all three engines).  These tests
cover the engine directly: bit-parity of the generated-source kernels, the
three fallback-eliminating lowerings (masked non-total ``if``, max-trip
masked batched-bound ``loop``, registered intrinsic vector lowerings),
engine selection, counters/caching, and the optional native tier.
"""

import numpy as np
import pytest

from repro import perf
from repro.compiler import compile_program
from repro.exec import CodegenEvaluator, VectorEvaluator
from repro.exec.codegen import _CODE_CACHE
from repro.interp import Evaluator, default_engine, run_program
from repro.ir import source as S
from repro.ir.builder import (
    f32,
    i64,
    if_,
    intrinsic,
    loop_,
    map_,
    reduce_,
    to_i64,
    v,
)

SCALAR = Evaluator()


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Point the disk cache at a per-test dir and drop in-memory kernels."""
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "kcache"))
    _CODE_CACHE.clear()
    yield


def both(e, **env):
    """Evaluate under oracle and codegen; assert bit-identical results."""
    ref = SCALAR.eval(e, env)
    ev = CodegenEvaluator()
    got = ev.eval(e, env)
    assert len(ref) == len(got)
    for r, g in zip(ref, got):
        ra, ga = np.asarray(r), np.asarray(g)
        assert ra.shape == ga.shape, (ra.shape, ga.shape)
        assert ra.dtype == ga.dtype, (ra.dtype, ga.dtype)
        assert ra.tobytes() == ga.tobytes()
    return ev


def arr(xs, dtype=np.float32):
    return np.asarray(xs, dtype=dtype)


class TestEmittedKernelParity:
    def test_arith_chain(self):
        both(
            map_(lambda x: S.UnOp("abs", x * 2.0 + 1.0 - x * 0.5), v("xs")),
            xs=arr([-1.5, 2.0, 3.0]),
        )

    def test_let_sharing(self):
        both(
            map_(
                lambda x: S.Let(("t",), x * x, S.Var("t") + S.Var("t") * 0.5),
                v("xs"),
            ),
            xs=arr([1, 2, 3, 4]),
        )

    def test_uniform_if_in_emitted_kernel(self):
        both(
            map_(lambda x: if_(v("flag"), x * 2.0 + 1.0, x - 3.0 * x), v("xs")),
            xs=arr([1, 2]),
            flag=np.bool_(True),
        )

    def test_total_batched_if_emitted(self):
        e = map_(
            lambda x: if_(S.BinOp(">", x, f32(0.0)), x * 2.0, x - 1.0), v("xs")
        )
        ev = both(e, xs=arr([-1, 0, 1, 2]))
        assert ev.scalar_fallbacks == 0

    def test_index_gather_emitted(self):
        both(
            map_(lambda i: v("xs")[i] * 2.0 + 1.0, v("idx")),
            xs=arr([10, 20, 30]),
            idx=np.asarray([2, 0, 1, 1], dtype=np.int64),
        )

    def test_reduce_fold_order_preserved(self):
        # f32 addition is non-associative: parity requires the same
        # left-to-right fold the oracle uses, emitted kernels included.
        rng = np.random.default_rng(3)
        xs = rng.standard_normal(257).astype(np.float32)
        both(reduce_(lambda a, b: a + b, f32(0.0), v("xs")), xs=xs)

    def test_min_max_nan_parity(self):
        xs = arr([0.0, -0.0, 1.0, np.nan])
        ys = arr([-0.0, 0.0, np.nan, 1.0])
        both(
            map_(lambda x, y: S.BinOp("min", x, y) + S.BinOp("max", x, y),
                 v("xs"), v("ys")),
            xs=xs, ys=ys,
        )

    def test_nested_map(self):
        both(
            map_(lambda row: map_(lambda x: x * x + 1.0, row), v("xss")),
            xss=arr([[1, 2], [3, 4]]),
        )


class TestMaskedIf:
    def _pow_guarded(self):
        # ``pow`` is excluded from the totality whitelist, so the vector
        # engine runs this per-lane; codegen masks instead.
        return map_(
            lambda x: if_(
                S.BinOp(">", x, i64(0)), S.BinOp("pow", i64(2), x), i64(0)
            ),
            v("xs"),
        )

    def test_mixed_lanes_no_fallback(self):
        e = self._pow_guarded()
        xs = np.asarray([-3, 2, 0, 5, -1], dtype=np.int64)
        ref = SCALAR.eval(e, {"xs": xs})
        ev = CodegenEvaluator()
        got = ev.eval(e, {"xs": xs})
        assert np.asarray(ref[0]).tobytes() == np.asarray(got[0]).tobytes()
        assert ev.scalar_fallbacks == 0
        assert ev.masked_ifs > 0
        # the vector engine still falls back on the same program
        vev = VectorEvaluator()
        vev.eval(e, {"xs": xs})
        assert vev.scalar_fallbacks > 0

    def test_untaken_branch_never_executes(self):
        # pow(2, x) raises for negative x; every lane here takes the else
        # branch, so the masked lowering must not touch the then branch.
        e = self._pow_guarded()
        xs = np.asarray([-1, -5, -2], dtype=np.int64)
        ref = SCALAR.eval(e, {"xs": xs})
        got = CodegenEvaluator().eval(e, {"xs": xs})
        assert np.asarray(ref[0]).tobytes() == np.asarray(got[0]).tobytes()

    def test_all_true_fast_path(self):
        e = self._pow_guarded()
        xs = np.asarray([1, 2, 3], dtype=np.int64)
        ref = SCALAR.eval(e, {"xs": xs})
        got = CodegenEvaluator().eval(e, {"xs": xs})
        assert np.asarray(ref[0]).tobytes() == np.asarray(got[0]).tobytes()

    def test_branch_dtype_promotion_matches_oracle(self):
        # then yields i64, else f32: the oracle's restack promotes; the
        # masked scatter must land on the same dtype.
        e = map_(
            lambda x: if_(
                S.BinOp(">", x, i64(0)),
                S.BinOp("pow", i64(2), x),
                S.UnOp("to_f32", x),
            ),
            v("xs"),
        )
        xs = np.asarray([-1, 2, -3, 4], dtype=np.int64)
        ref = SCALAR.eval(e, {"xs": xs})
        got = CodegenEvaluator().eval(e, {"xs": xs})
        ra, ga = np.asarray(ref[0]), np.asarray(got[0])
        assert ra.dtype == ga.dtype and ra.tobytes() == ga.tobytes()


class TestMaskedLoop:
    def test_data_dependent_bound(self):
        e = map_(
            lambda x: loop_(x, to_i64(x), lambda i, acc: acc * 2.0 + 1.0),
            v("xs"),
        )
        xs = arr([1.2, 3.7, 0.4, 2.0, 5.9])
        ref = SCALAR.eval(e, {"xs": xs})
        ev = CodegenEvaluator()
        got = ev.eval(e, {"xs": xs})
        assert np.asarray(ref[0]).tobytes() == np.asarray(got[0]).tobytes()
        assert ev.scalar_fallbacks == 0
        assert ev.masked_loops > 0

    def test_zero_trip_lanes_keep_inits(self):
        e = map_(
            lambda x: loop_(x, to_i64(x), lambda i, acc: acc + 10.0), v("xs")
        )
        xs = arr([0.0, 2.5, -1.0, 1.0])  # bounds 0, 2, -1, 1
        ref = SCALAR.eval(e, {"xs": xs})
        got = CodegenEvaluator().eval(e, {"xs": xs})
        assert np.asarray(ref[0]).tobytes() == np.asarray(got[0]).tobytes()

    def test_accumulator_dtype_drift(self):
        # the body promotes i64 state to f64; zero-trip lanes keep the i64
        # init, and the oracle's restack promotes the whole batch — the
        # masked lowering must land on the same dtype and bits.
        e = map_(
            lambda x: loop_(
                to_i64(x), to_i64(x), lambda i, acc: acc * 1.5
            ),
            v("xs"),
        )
        xs = arr([0.0, 3.0, 1.0, 0.0])
        ref = SCALAR.eval(e, {"xs": xs})
        got = CodegenEvaluator().eval(e, {"xs": xs})
        ra, ga = np.asarray(ref[0]), np.asarray(got[0])
        assert ra.dtype == ga.dtype and ra.tobytes() == ga.tobytes()

    def test_loop_ivar_visible_to_body(self):
        e = map_(
            lambda x: loop_(
                x, to_i64(x), lambda i, acc: acc + S.UnOp("to_f32", i)
            ),
            v("xs"),
        )
        xs = arr([2.0, 4.0, 1.0])
        ref = SCALAR.eval(e, {"xs": xs})
        got = CodegenEvaluator().eval(e, {"xs": xs})
        assert np.asarray(ref[0]).tobytes() == np.asarray(got[0]).tobytes()


class TestIntrinsicLowering:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_thomas_tridag_vector_lowering(self, dtype):
        import repro.bench.references  # noqa: F401  (registers thomas_tridag)

        rng = np.random.default_rng(0)
        xss = (rng.standard_normal((4, 9)) * 8).astype(dtype)
        e = map_(lambda row: intrinsic("thomas_tridag", row), v("xss"))
        ref = SCALAR.eval(e, {"xss": xss})
        ev = CodegenEvaluator()
        got = ev.eval(e, {"xss": xss})
        ra, ga = np.asarray(ref[0]), np.asarray(got[0])
        assert ra.dtype == ga.dtype and ra.tobytes() == ga.tobytes()
        assert ev.scalar_fallbacks == 0
        assert perf.counters().get("exec.codegen.intrinsic", 0) > 0


class TestCompileCacheFlow:
    E = staticmethod(
        lambda: map_(lambda x: S.UnOp("abs", x * 2.0 + 1.0 - x * 0.5), v("xs"))
    )

    def test_fresh_compile_counts_once_per_instance(self):
        e = self.E()
        before = perf.counters().get("exec.codegen.compile", 0)
        ev = CodegenEvaluator()
        ev.eval(e, {"xs": arr([1, 2, 3])})
        ev.eval(e, {"xs": arr([4, 5])})  # instance cache: no recompile
        after = perf.counters().get("exec.codegen.compile", 0)
        assert after == before + 1

    def test_second_evaluator_hits_memory_cache(self):
        e = self.E()
        CodegenEvaluator().eval(e, {"xs": arr([1, 2, 3])})
        before = perf.counters()
        CodegenEvaluator().eval(e, {"xs": arr([1, 2, 3])})
        after = perf.counters()
        assert after.get("exec.codegen.mem_hits", 0) > before.get(
            "exec.codegen.mem_hits", 0
        )
        assert after.get("exec.codegen.compile", 0) == before.get(
            "exec.codegen.compile", 0
        )

    def test_disk_cache_avoids_recompile(self):
        e = self.E()
        CodegenEvaluator().eval(e, {"xs": arr([1, 2, 3])})
        _CODE_CACHE.clear()  # simulate a fresh process, same disk
        before = perf.counters()
        ref = SCALAR.eval(e, {"xs": arr([7, 8])})
        got = CodegenEvaluator().eval(e, {"xs": arr([7, 8])})
        assert np.asarray(ref[0]).tobytes() == np.asarray(got[0]).tobytes()
        after = perf.counters()
        assert after.get("exec.codegen.cache_hits", 0) > before.get(
            "exec.codegen.cache_hits", 0
        )
        assert after.get("exec.codegen.compile", 0) == before.get(
            "exec.codegen.compile", 0
        )

    def test_no_cache_env_disables_persistence(self, tmp_path, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        e = self.E()
        both(e, xs=arr([1, 2, 3]))
        d = os.environ["REPRO_CODEGEN_CACHE"]
        assert not os.path.isdir(d) or not os.listdir(d)


class TestPlumbing:
    def _matmul_inputs(self, seed=1):
        rng = np.random.default_rng(seed)
        return {
            "xss": rng.standard_normal((6, 4)).astype(np.float32),
            "yss": rng.standard_normal((4, 6)).astype(np.float32),
        }

    def test_run_program_engine_parity(self):
        from repro.bench.programs.matmul import matmul_program

        prog = matmul_program()
        inputs = self._matmul_inputs()
        ref = run_program(prog, inputs, engine="scalar")
        got = run_program(prog, inputs, engine="codegen")
        for r, g in zip(ref, got):
            assert np.asarray(r).tobytes() == np.asarray(g).tobytes()

    def test_run_program_unknown_engine_still_rejected(self):
        from repro.bench.programs.matmul import matmul_program

        with pytest.raises(ValueError, match="unknown engine"):
            run_program(
                matmul_program(),
                {"xss": arr([[1.0]]), "yss": arr([[1.0]])},
                engine="turbo",
            )

    def test_default_engine_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC", "codegen")
        assert default_engine() == "codegen"

    def test_compiled_program_run_engine(self):
        from repro.bench.programs.matmul import matmul_program

        cp = compile_program(matmul_program(), "incremental")
        inputs = self._matmul_inputs(seed=2)
        ref = cp.run(inputs, engine="scalar")
        got = cp.run(inputs, engine="codegen")
        for r, g in zip(ref, got):
            assert np.asarray(r).tobytes() == np.asarray(g).tobytes()

    def test_differential_engines_accept_codegen(self):
        from repro.check.differential import ENGINES

        assert ENGINES == ("scalar", "vector", "codegen")


class TestObsAndPerf:
    def test_masked_spans_emitted(self):
        from repro import obs

        e = map_(
            lambda x: if_(
                S.BinOp(">", x, i64(0)), S.BinOp("pow", i64(2), x), i64(0)
            ),
            v("xs"),
        )
        with obs.tracing() as tracer:
            CodegenEvaluator().eval(e, {"xs": np.asarray([-1, 2], dtype=np.int64)})
        masked = [s for s in tracer.spans if s.name == "exec.codegen.masked"]
        assert masked and masked[0].args.get("construct") == "if"

    def test_fallback_histogram_flushed_to_perf(self):
        # satellite: the per-construct histogram surfaces through perf
        e = map_(
            lambda x: if_(
                S.BinOp(">", x, i64(0)), S.BinOp("pow", i64(2), x), i64(0)
            ),
            v("xs"),
        )
        before = perf.counters().get("exec.fallback.if", 0)
        VectorEvaluator().eval(e, {"xs": np.asarray([1, 2], dtype=np.int64)})
        after = perf.counters().get("exec.fallback.if", 0)
        assert after > before


class TestNativeTier:
    def test_native_parity_when_toolchain_present(self, monkeypatch):
        from repro.exec import native

        if native.toolchain() is None:
            pytest.skip("no C toolchain on PATH")
        monkeypatch.setenv("REPRO_NATIVE", "1")
        e = map_(lambda x: S.UnOp("abs", x * 2.0 + 1.0 - x * 0.5), v("xs"))
        xs = np.asarray([-1.5, 2.25, 3.5, -0.0], dtype=np.float64)
        ref = SCALAR.eval(e, {"xs": xs})
        before = perf.counters().get("exec.codegen.native_launch", 0)
        got = CodegenEvaluator().eval(e, {"xs": xs})
        assert np.asarray(ref[0]).tobytes() == np.asarray(got[0]).tobytes()
        assert perf.counters().get("exec.codegen.native_launch", 0) > before

    def test_f32_inputs_skip_native_launch(self, monkeypatch):
        from repro.exec import native

        if native.toolchain() is None:
            pytest.skip("no C toolchain on PATH")
        monkeypatch.setenv("REPRO_NATIVE", "1")
        # launch guard: non-f64 arrays take the generated-Python path
        both(
            map_(lambda x: S.UnOp("abs", x * 2.0 + 1.0 - x * 0.5), v("xs")),
            xs=arr([-1.5, 2.25, 3.5]),
        )

    def test_native_disabled_by_default(self, monkeypatch):
        from repro.exec import native

        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        assert not native.enabled()
