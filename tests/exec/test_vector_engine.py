"""Vectorizing executor: bit-parity with the oracle, fallbacks, plumbing.

The heavy parity proof lives in ``tests/check/test_differential.py`` (every
forced path of every benchmark now runs under *both* engines).  These tests
cover the engine directly: construct-level parity, the per-construct scalar
fallback (and its counters), engine selection, and error surfaces.
"""

import numpy as np
import pytest

from repro.compiler import compile_program
from repro.exec import VectorEvaluator
from repro.interp import Evaluator, InterpError, default_engine, run_program
from repro.ir import source as S
from repro.ir.builder import (
    f32,
    i64,
    if_,
    intrinsic,
    iota,
    loop_,
    map_,
    reduce_,
    replicate,
    scan_,
    v,
)

SCALAR = Evaluator()


def both(e, **env):
    """Evaluate under both engines and assert bit-identical results."""
    ref = SCALAR.eval(e, env)
    got = VectorEvaluator().eval(e, env)
    assert len(ref) == len(got)
    for r, g in zip(ref, got):
        ra, ga = np.asarray(r), np.asarray(g)
        assert ra.shape == ga.shape, (ra.shape, ga.shape)
        assert ra.dtype == ga.dtype, (ra.dtype, ga.dtype)
        assert ra.tobytes() == ga.tobytes()
    return got


def arr(xs, dtype=np.float32):
    return np.asarray(xs, dtype=dtype)


class TestConstructParity:
    def test_map_binop(self):
        both(map_(lambda x: x * 2.0 + 1.0, v("xs")), xs=arr([1, 2, 3]))

    def test_map_multi_input_output(self):
        both(
            map_(lambda x, y: (x + y, x - y), v("xs"), v("ys")),
            xs=arr([1, 2]),
            ys=arr([10, 20]),
        )

    def test_nested_map(self):
        both(
            map_(lambda row: map_(lambda x: x * x, row), v("xss")),
            xss=arr([[1, 2], [3, 4]]),
        )

    def test_map_free_var(self):
        both(map_(lambda x: x + v("c"), v("xs")), xs=arr([1, 2]), c=np.float32(5))

    def test_reduce_fold_order(self):
        # f32 addition is non-associative: bit-parity requires the vector
        # engine to keep the oracle's left-to-right fold order.
        rng = np.random.default_rng(3)
        xs = rng.standard_normal(257).astype(np.float32)
        both(reduce_(lambda a, b: a + b, f32(0.0), v("xs")), xs=xs)

    def test_scan(self):
        both(scan_(lambda a, b: a + b, f32(0.0), v("xs")), xs=arr([1, 2, 3, 4]))

    def test_batched_reduce_rows(self):
        both(
            map_(lambda row: reduce_(lambda a, b: a + b, f32(0.0), row), v("xss")),
            xss=arr([[1.5, 2.5], [3.5, 4.5], [5.5, 6.5]]),
        )

    def test_total_if_vectorizes(self):
        e = map_(lambda x: if_(S.BinOp(">", x, f32(0.0)), x * 2.0, x - 1.0), v("xs"))
        ev = VectorEvaluator()
        ref = SCALAR.eval(e, {"xs": arr([-1, 0, 1, 2])})
        got = ev.eval(e, {"xs": arr([-1, 0, 1, 2])})
        assert np.asarray(ref[0]).tobytes() == np.asarray(got[0]).tobytes()
        assert ev.scalar_fallbacks == 0

    def test_if_uniform_cond(self):
        both(
            map_(lambda x: if_(v("flag"), x, x * 3.0), v("xs")),
            xs=arr([1, 2]),
            flag=np.bool_(True),
        )

    def test_min_max_parity(self):
        # min/max must match Python's min/max tie behavior (e.g. -0.0 vs 0.0).
        xs = arr([0.0, -0.0, 1.0, np.nan])
        ys = arr([-0.0, 0.0, np.nan, 1.0])
        both(map_(lambda x, y: S.BinOp("min", x, y), v("xs"), v("ys")), xs=xs, ys=ys)
        both(map_(lambda x, y: S.BinOp("max", x, y), v("xs"), v("ys")), xs=xs, ys=ys)

    def test_int_division(self):
        both(
            map_(lambda x: x / i64(2), v("xs")),
            xs=np.asarray([-7, -1, 1, 7], dtype=np.int64),
        )

    def test_index_gather(self):
        both(
            map_(lambda i: v("xs")[i], v("idx")),
            xs=arr([10, 20, 30]),
            idx=np.asarray([2, 0, 1, 1], dtype=np.int64),
        )

    def test_loop(self):
        e = map_(
            lambda x: loop_(x, i64(3), lambda _i, acc: acc * 2.0),
            v("xs"),
        )
        both(e, xs=arr([1, 2]))

    def test_iota_replicate(self):
        both(map_(lambda x: reduce_(lambda a, b: a + b, i64(0), iota(i64(4))) + x,
                  v("xs")),
             xs=np.asarray([1, 2], dtype=np.int64))
        both(replicate(i64(3), v("c")), c=np.float32(2.5))


class TestFallbacks:
    def test_nontotal_if_falls_back(self):
        # ``pow`` is excluded from the totality whitelist (negative integer
        # exponents raise), so a batched non-total ``if`` goes per-lane.
        e = map_(
            lambda x: if_(S.BinOp(">", x, i64(0)), S.BinOp("pow", i64(2), x), i64(0)),
            v("xs"),
        )
        ev = VectorEvaluator()
        ref = SCALAR.eval(e, {"xs": np.asarray([-1, 2, 3], dtype=np.int64)})
        got = ev.eval(e, {"xs": np.asarray([-1, 2, 3], dtype=np.int64)})
        assert np.asarray(ref[0]).tobytes() == np.asarray(got[0]).tobytes()
        assert ev.scalar_fallbacks > 0
        assert ev.fallback_counts["if"] > 0

    def test_batched_intrinsic_falls_back(self):
        import repro.bench.references  # noqa: F401  (registers thomas_tridag)

        rng = np.random.default_rng(0)
        xss = rng.standard_normal((3, 8)).astype(np.float32)
        e = map_(lambda row: intrinsic("thomas_tridag", row), v("xss"))
        ev = VectorEvaluator()
        ref = SCALAR.eval(e, {"xss": xss})
        got = ev.eval(e, {"xss": xss})
        assert np.asarray(ref[0]).tobytes() == np.asarray(got[0]).tobytes()
        assert ev.fallback_counts["intrinsic:thomas_tridag"] > 0

    def test_batched_iota_falls_back(self):
        e = map_(lambda n: reduce_(lambda a, b: a + b, i64(0), iota(n)), v("ns"))
        ev = VectorEvaluator()
        ns = np.asarray([1, 3, 5], dtype=np.int64)
        ref = SCALAR.eval(e, {"ns": ns})
        got = ev.eval(e, {"ns": ns})
        assert np.asarray(ref[0]).tobytes() == np.asarray(got[0]).tobytes()
        assert ev.fallback_counts["iota"] > 0

    def test_fallback_counter_flushed_to_perf(self):
        from repro import perf

        e = map_(
            lambda x: if_(S.BinOp(">", x, i64(0)), S.BinOp("pow", i64(2), x), i64(0)),
            v("xs"),
        )
        before = perf.counters().get("exec.scalar_fallbacks", 0)
        VectorEvaluator().eval(e, {"xs": np.asarray([1, 2], dtype=np.int64)})
        after = perf.counters().get("exec.scalar_fallbacks", 0)
        assert after > before


class TestPlumbing:
    def test_run_program_engine_parity(self):
        from repro.bench.programs.matmul import matmul_program

        prog = matmul_program()
        rng = np.random.default_rng(1)
        inputs = {
            "xss": rng.standard_normal((6, 4)).astype(np.float32),
            "yss": rng.standard_normal((4, 6)).astype(np.float32),
        }
        ref = run_program(prog, inputs, engine="scalar")
        got = run_program(prog, inputs, engine="vector")
        for r, g in zip(ref, got):
            assert np.asarray(r).tobytes() == np.asarray(g).tobytes()

    def test_run_program_unknown_engine(self):
        from repro.bench.programs.matmul import matmul_program

        prog = matmul_program()
        with pytest.raises(ValueError, match="unknown engine"):
            run_program(prog, {"xss": arr([[1.0]]), "yss": arr([[1.0]])},
                        engine="turbo")

    def test_default_engine_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC", raising=False)
        assert default_engine() == "scalar"
        monkeypatch.setenv("REPRO_EXEC", "vector")
        assert default_engine() == "vector"

    def test_compiled_program_run_engine(self):
        from repro.bench.programs.matmul import matmul_program

        cp = compile_program(matmul_program(), "incremental")
        rng = np.random.default_rng(2)
        inputs = {
            "xss": rng.standard_normal((5, 3)).astype(np.float32),
            "yss": rng.standard_normal((3, 5)).astype(np.float32),
        }
        ref = cp.run(inputs, engine="scalar")
        got = cp.run(inputs, engine="vector")
        for r, g in zip(ref, got):
            assert np.asarray(r).tobytes() == np.asarray(g).tobytes()

    def test_kernel_compile_reused_across_launches(self):
        ev = VectorEvaluator()
        e = map_(lambda x: x + 1.0, v("xs"))
        ev.eval(e, {"xs": arr([1, 2])})
        compiled = ev.compiled_kernels
        ev.eval(e, {"xs": arr([3, 4, 5])})
        assert ev.compiled_kernels == compiled  # second launch: cache hit

    def test_thresholds_shared_with_scalar_fallback(self):
        # The embedded scalar evaluator must see threshold updates made
        # after construction (the differential harness mutates them
        # between forced paths).
        ev = VectorEvaluator(thresholds={"t0": 1})
        ev.thresholds["t0"] = 99
        assert ev.scalar.thresholds["t0"] == 99

    def test_empty_map_raises(self):
        with pytest.raises(InterpError, match="empty"):
            VectorEvaluator().eval(
                map_(lambda x: x + 1.0, v("xs")), {"xs": arr([])}
            )

    def test_unbound_variable(self):
        with pytest.raises(InterpError, match="unbound"):
            VectorEvaluator().eval(v("nope"), {})


class TestObs:
    def test_kernel_spans_emitted(self):
        from repro import obs

        e = map_(lambda x: x * 2.0, v("xs"))
        with obs.tracing() as tracer:
            VectorEvaluator().eval(e, {"xs": arr([1, 2, 3])})
        names = {s.name for s in tracer.spans}
        assert "exec.kernel" in names

    def test_fallback_spans_annotated(self):
        from repro import obs

        e = map_(
            lambda x: if_(S.BinOp(">", x, i64(0)), S.BinOp("pow", i64(2), x), i64(0)),
            v("xs"),
        )
        with obs.tracing() as tracer:
            VectorEvaluator().eval(e, {"xs": np.asarray([1], dtype=np.int64)})
        fb = [s for s in tracer.spans if s.name == "exec.fallback"]
        assert fb and all(s.args.get("fallback") for s in fb)
