__kernel void matmul_k0_segmap(__global float *xss, __global float *yss)
{
    long gid = get_global_id(0);
    long i0 = gid;
    __global float *xs_0 = &xss[i0];
    float res_6[/*n*/];  // sequential map
    for (long k_7 = 0; k_7 < len(transposed(yss)); k_7++) {
        res_6[k_7] = ...;  // elementwise body
    }
    out[gid] = res_6;
}

__kernel void matmul_k1_segmap(__global float *xss, __global float *yss)
{
    long gid = get_global_id(0);
    long i0 = gid;
    __global float *xs_0 = &xss[i0];
    __local float buf_8[n * m];  // segred^0 result
    for (long c = get_local_id(0); c < n * m; c += get_local_size(0)) {
        buf_8[c] = ...;  // element body
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    // intra-group tree reduction over buf_8
    for (long s = get_local_size(0) / 2; s > 0; s >>= 1) {
        if (get_local_id(0) < s) buf_8[get_local_id(0)] = op(buf_8[get_local_id(0)], buf_8[get_local_id(0) + s]);
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[gid] = buf_8;
}

__kernel void matmul_k2_segmap(__global float *xss, __global float *yss)
{
    long gid = get_global_id(0);
    long i0 = (gid) / (n);
    __global float *xs_0 = &xss[i0];
    long i1 = (gid) % (n);
    __global float *ys_1 = &transposed(yss)[i1];
    float acc_9 = 0.0f;
    for (long k_10 = 0; k_10 < len(xs_0); k_10++) {
        acc_9 = (acc_9 + (xs_0[k_10] * ys_1[k_10]));
    }
    out[gid] = acc_9;
}

__kernel void matmul_k3_segmap(__global float *xss, __global float *yss)
{
    long gid = get_global_id(0);
    long i0 = (gid) / (n);
    __global float *xs_0 = &xss[i0];
    long i1 = (gid) % (n);
    __global float *ys_1 = &transposed(yss)[i1];
    __local float buf_11[m];  // segred^0 result
    for (long c = get_local_id(0); c < m; c += get_local_size(0)) {
        buf_11[c] = ...;  // element body
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    // intra-group tree reduction over buf_11
    for (long s = get_local_size(0) / 2; s > 0; s >>= 1) {
        if (get_local_id(0) < s) buf_11[get_local_id(0)] = op(buf_11[get_local_id(0)], buf_11[get_local_id(0) + s]);
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[gid] = buf_11;
}

__kernel void matmul_k4_segred(__global float *xss, __global float *yss)
{
    long gid = get_global_id(0);
    long i0 = (gid) / (n * m);
    __global float *xs_0 = &xss[i0];
    long i1 = ((gid) % (n * m)) / (m);
    __global float *ys_1 = &transposed(yss)[i1];
    long i2 = ((gid) % (n * m)) % (m);
    float x_4 = xs_0[i2];
    float y_5 = ys_1[i2];
    // grid-level segmented reduction: stage 1
    out[gid] = (x_4 * y_5);
}

// host driver for matmul (incremental flattening)
// tunable: t0 guards Par = n*n (suff_outer_par)
// tunable: t1 guards Par = m*n*n (suff_intra_par)
// tunable: t2 guards Par = n (suff_outer_par)
// tunable: t3 guards Par = m*n*n (suff_intra_par)
void matmul_main(__global float *xss, __global float *yss)
{
    if ((n >= t2)) {
        launch1d(matmul_k0_segmap, /*threads=*/n, ...);
    } else {
        if ((m*n*n >= t3)) {
            launch1d(matmul_k1_segmap, /*threads=*/n, ...);
        } else {
            if ((n*n >= t0)) {
                launch1d(matmul_k2_segmap, /*threads=*/n*n, ...);
            } else {
                if ((m*n*n >= t1)) {
                    launch1d(matmul_k3_segmap, /*threads=*/n*n, ...);
                } else {
                    launch1d(matmul_k4_segred, /*threads=*/m*n*n, ...);
                }
            }
        }
    }
}
