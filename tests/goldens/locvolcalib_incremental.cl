__kernel void locvolcalib_k0_segmap(long numT, __global float *xsss0, __global float *ysss0)
{
    long gid = get_global_id(0);
    long i0 = gid;
    __global float *xss0_0 = &xsss0[i0];
    __global float *yss0_1 = &ysss0[i0];
    __global float *xss_3 = xss0_0;
    __global float *yss_4 = yss0_1;
    for (long t_2 = 0; t_2 < numT; t_2++) {
        auto a_23;
        float res_71[/*n*/];  // sequential map
        for (long k_72 = 0; k_72 < len(xss_3); k_72++) {
            res_71[k_72] = ...;  // elementwise body
        }
        a_23 = res_71;
        auto a_24;
        float res_73[/*n*/];  // sequential map
        for (long k_74 = 0; k_74 < len(yss_4); k_74++) {
            res_73[k_74] = ...;  // elementwise body
        }
        a_24 = res_73;
        xss_3, yss_4 = a_23, a_24;
    }
    out[gid] = xss_3, yss_4;
}

__kernel void locvolcalib_k1_segmap(long numT, __global float *xsss0, __global float *ysss0)
{
    long gid = get_global_id(0);
    long i0 = gid;
    __global float *xss0_0 = &xsss0[i0];
    __global float *yss0_1 = &ysss0[i0];
    __global float *xss_3 = xss0_0;
    __global float *yss_4 = yss0_1;
    for (long t_2 = 0; t_2 < numT; t_2++) {
        auto a_23 = /* Let */;
        auto a_24 = /* Let */;
        xss_3, yss_4 = a_23, a_24;
    }
    out[gid] = xss_3, yss_4;
}

__kernel void locvolcalib_k2_segmap(__global float *xss_35, __global float *yss_36)
{
    long gid = get_global_id(0);
    long i0 = gid;
    __global float *xss_37 = &xss_35[i0];
    __global float *yss_38 = &yss_36[i0];
    __global float *a_23;
    float res_75[/*n*/];  // sequential map
    for (long k_76 = 0; k_76 < len(xss_37); k_76++) {
        res_75[k_76] = ...;  // elementwise body
    }
    a_23 = res_75;
    __global float *a_24;
    float res_77[/*n*/];  // sequential map
    for (long k_78 = 0; k_78 < len(yss_38); k_78++) {
        res_77[k_78] = ...;  // elementwise body
    }
    a_24 = res_77;
    out[gid] = a_23, a_24;
}

__kernel void locvolcalib_k3_segmap(__global float *xss_35, __global float *yss_36)
{
    long gid = get_global_id(0);
    long i0 = gid;
    __global float *xss_37 = &xss_35[i0];
    __global float *yss_38 = &yss_36[i0];
    __global float *a_23 = /* Let */;
    __global float *a_24 = /* Let */;
    out[gid] = a_23, a_24;
}

__kernel void locvolcalib_k4_segmap(__global float *xss_35)
{
    long gid = get_global_id(0);
    long i0 = (gid) / (numX);
    __global float *xss_37 = &xss_35[i0];
    long i1 = (gid) % (numX);
    __global float *xs_5 = &xss_37[i1];
    __global float *bs_12;
    float res_79[/*n*/];  // sequential scan
    for (long k_80 = 0; k_80 < len(xs_5); k_80++) {
        res_79[k_80] = ...;  // elementwise body
    }
    bs_12 = res_79;
    __global float *cs_13;
    float res_81[/*n*/];  // sequential scan
    for (long k_82 = 0; k_82 < len(bs_12); k_82++) {
        res_81[k_82] = ...;  // elementwise body
    }
    cs_13 = res_81;
    float res_83[/*n*/];  // sequential scan
    for (long k_84 = 0; k_84 < len(cs_13); k_84++) {
        res_83[k_84] = ...;  // elementwise body
    }
    out[gid] = res_83;
}

__kernel void locvolcalib_k5_segmap(__global float *xss_35)
{
    long gid = get_global_id(0);
    long i0 = (gid) / (numX);
    __global float *xss_37 = &xss_35[i0];
    long i1 = (gid) % (numX);
    __global float *xs_5 = &xss_37[i1];
    __global float *bs_12;
    __local float buf_85[numY];  // segscan^0 result
    for (long c = get_local_id(0); c < numY; c += get_local_size(0)) {
        buf_85[c] = ...;  // element body
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    // intra-group blocked scan over buf_85
    for (long d = 1; d < numY; d <<= 1) {
        if (get_local_id(0) >= d) buf_85[get_local_id(0)] = op(buf_85[get_local_id(0) - d], buf_85[get_local_id(0)]);
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    bs_12 = buf_85;
    __global float *cs_13;
    __local float buf_86[numY];  // segscan^0 result
    for (long c = get_local_id(0); c < numY; c += get_local_size(0)) {
        buf_86[c] = ...;  // element body
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    // intra-group blocked scan over buf_86
    for (long d = 1; d < numY; d <<= 1) {
        if (get_local_id(0) >= d) buf_86[get_local_id(0)] = op(buf_86[get_local_id(0) - d], buf_86[get_local_id(0)]);
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    cs_13 = buf_86;
    __local float buf_87[numY];  // segscan^0 result
    for (long c = get_local_id(0); c < numY; c += get_local_size(0)) {
        buf_87[c] = ...;  // element body
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    // intra-group blocked scan over buf_87
    for (long d = 1; d < numY; d <<= 1) {
        if (get_local_id(0) >= d) buf_87[get_local_id(0)] = op(buf_87[get_local_id(0) - d], buf_87[get_local_id(0)]);
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[gid] = buf_87;
}

__kernel void locvolcalib_k6_segscan(__global float *xss_35)
{
    long gid = get_global_id(0);
    long i0 = (gid) / (numX * numY);
    __global float *xss_37 = &xss_35[i0];
    long i1 = ((gid) % (numX * numY)) / (numY);
    __global float *xs_5 = &xss_37[i1];
    long i2 = ((gid) % (numX * numY)) % (numY);
    float x_52 = xs_5[i2];
    // grid-level segmented scan: pass 1 of 2
    out[gid] = x_52;
}

__kernel void locvolcalib_k7_segscan(__global float *bs_54)
{
    long gid = get_global_id(0);
    long i0 = (gid) / (numX * numY);
    __global float *bs_53 = &bs_54[i0];
    long i1 = ((gid) % (numX * numY)) / (numY);
    __global float *bs_12 = &bs_53[i1];
    long i2 = ((gid) % (numX * numY)) % (numY);
    float x_55 = bs_12[i2];
    // grid-level segmented scan: pass 1 of 2
    out[gid] = x_55;
}

__kernel void locvolcalib_k8_segscan(__global float *cs_57)
{
    long gid = get_global_id(0);
    long i0 = (gid) / (numX * numY);
    __global float *cs_56 = &cs_57[i0];
    long i1 = ((gid) % (numX * numY)) / (numY);
    __global float *cs_13 = &cs_56[i1];
    long i2 = ((gid) % (numX * numY)) % (numY);
    float x_58 = cs_13[i2];
    // grid-level segmented scan: pass 1 of 2
    out[gid] = x_58;
}

__kernel void locvolcalib_k9_segmap(__global float *yss_36)
{
    long gid = get_global_id(0);
    long i0 = (gid) / (numY);
    __global float *yss_38 = &yss_36[i0];
    long i1 = (gid) % (numY);
    __global float *ys_14 = &yss_38[i1];
    __global float *bs_21;
    float res_88[/*n*/];  // sequential scan
    for (long k_89 = 0; k_89 < len(ys_14); k_89++) {
        res_88[k_89] = ...;  // elementwise body
    }
    bs_21 = res_88;
    __global float *cs_22;
    float res_90[/*n*/];  // sequential scan
    for (long k_91 = 0; k_91 < len(bs_21); k_91++) {
        res_90[k_91] = ...;  // elementwise body
    }
    cs_22 = res_90;
    float res_92[/*n*/];  // sequential scan
    for (long k_93 = 0; k_93 < len(cs_22); k_93++) {
        res_92[k_93] = ...;  // elementwise body
    }
    out[gid] = res_92;
}

__kernel void locvolcalib_k10_segmap(__global float *yss_36)
{
    long gid = get_global_id(0);
    long i0 = (gid) / (numY);
    __global float *yss_38 = &yss_36[i0];
    long i1 = (gid) % (numY);
    __global float *ys_14 = &yss_38[i1];
    __global float *bs_21;
    __local float buf_94[numX];  // segscan^0 result
    for (long c = get_local_id(0); c < numX; c += get_local_size(0)) {
        buf_94[c] = ...;  // element body
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    // intra-group blocked scan over buf_94
    for (long d = 1; d < numX; d <<= 1) {
        if (get_local_id(0) >= d) buf_94[get_local_id(0)] = op(buf_94[get_local_id(0) - d], buf_94[get_local_id(0)]);
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    bs_21 = buf_94;
    __global float *cs_22;
    __local float buf_95[numX];  // segscan^0 result
    for (long c = get_local_id(0); c < numX; c += get_local_size(0)) {
        buf_95[c] = ...;  // element body
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    // intra-group blocked scan over buf_95
    for (long d = 1; d < numX; d <<= 1) {
        if (get_local_id(0) >= d) buf_95[get_local_id(0)] = op(buf_95[get_local_id(0) - d], buf_95[get_local_id(0)]);
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    cs_22 = buf_95;
    __local float buf_96[numX];  // segscan^0 result
    for (long c = get_local_id(0); c < numX; c += get_local_size(0)) {
        buf_96[c] = ...;  // element body
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    // intra-group blocked scan over buf_96
    for (long d = 1; d < numX; d <<= 1) {
        if (get_local_id(0) >= d) buf_96[get_local_id(0)] = op(buf_96[get_local_id(0) - d], buf_96[get_local_id(0)]);
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[gid] = buf_96;
}

__kernel void locvolcalib_k11_segscan(__global float *yss_36)
{
    long gid = get_global_id(0);
    long i0 = (gid) / (numY * numX);
    __global float *yss_38 = &yss_36[i0];
    long i1 = ((gid) % (numY * numX)) / (numX);
    __global float *ys_14 = &yss_38[i1];
    long i2 = ((gid) % (numY * numX)) % (numX);
    float x_63 = ys_14[i2];
    // grid-level segmented scan: pass 1 of 2
    out[gid] = x_63;
}

__kernel void locvolcalib_k12_segscan(__global float *bs_65)
{
    long gid = get_global_id(0);
    long i0 = (gid) / (numY * numX);
    __global float *bs_64 = &bs_65[i0];
    long i1 = ((gid) % (numY * numX)) / (numX);
    __global float *bs_21 = &bs_64[i1];
    long i2 = ((gid) % (numY * numX)) % (numX);
    float x_66 = bs_21[i2];
    // grid-level segmented scan: pass 1 of 2
    out[gid] = x_66;
}

__kernel void locvolcalib_k13_segscan(__global float *cs_68)
{
    long gid = get_global_id(0);
    long i0 = (gid) / (numY * numX);
    __global float *cs_67 = &cs_68[i0];
    long i1 = ((gid) % (numY * numX)) / (numX);
    __global float *cs_22 = &cs_67[i1];
    long i2 = ((gid) % (numY * numX)) % (numX);
    float x_69 = cs_22[i2];
    // grid-level segmented scan: pass 1 of 2
    out[gid] = x_69;
}

// host driver for locvolcalib (incremental flattening)
// tunable: t0 guards Par = numS*numX (suff_outer_par)
// tunable: t1 guards Par = numS*numX*numY (suff_intra_par)
// tunable: t2 guards Par = numS*numY (suff_outer_par)
// tunable: t3 guards Par = numS*numX*numY (suff_intra_par)
// tunable: t4 guards Par = numS (suff_outer_par)
// tunable: t5 guards Par = numS*numX*numY (suff_intra_par)
// tunable: t6 guards Par = numS (suff_outer_par)
// tunable: t7 guards Par = numS*numX*numY (suff_intra_par)
void locvolcalib_main(__global float *xsss0, __global float *ysss0, long numT)
{
    if ((numS >= t6)) {
        launch1d(locvolcalib_k0_segmap, /*threads=*/numS, ...);
    } else {
        if ((numS*numX*numY >= t7)) {
            launch1d(locvolcalib_k1_segmap, /*threads=*/numS, ...);
        } else {
            __global float *xss_35;
            xss_35 = xsss0;
            __global float *yss_36;
            yss_36 = ysss0;
            for (long t_2 = 0; t_2 < numT; t_2++) {
                if ((numS >= t4)) {
                    launch1d(locvolcalib_k2_segmap, /*threads=*/numS, ...);
                } else {
                    if ((numS*numX*numY >= t5)) {
                        launch1d(locvolcalib_k3_segmap, /*threads=*/numS, ...);
                    } else {
                        __global float *a_59;  // device buffer
                        if ((numS*numX >= t0)) {
                            launch1d(locvolcalib_k4_segmap, /*threads=*/numS*numX, ...);
                        } else {
                            if ((numS*numX*numY >= t1)) {
                                launch1d(locvolcalib_k5_segmap, /*threads=*/numS*numX, ...);
                            } else {
                                __global float *bs_54;  // device buffer
                                launch1d(locvolcalib_k6_segscan, /*threads=*/numS*numX*numY, ...);
                                __global float *cs_57;  // device buffer
                                launch1d(locvolcalib_k7_segscan, /*threads=*/numS*numX*numY, ...);
                                launch1d(locvolcalib_k8_segscan, /*threads=*/numS*numX*numY, ...);
                            }
                        }
                        __global float *a_70;  // device buffer
                        if ((numS*numY >= t2)) {
                            launch1d(locvolcalib_k9_segmap, /*threads=*/numS*numY, ...);
                        } else {
                            if ((numS*numX*numY >= t3)) {
                                launch1d(locvolcalib_k10_segmap, /*threads=*/numS*numY, ...);
                            } else {
                                __global float *bs_65;  // device buffer
                                launch1d(locvolcalib_k11_segscan, /*threads=*/numS*numX*numY, ...);
                                __global float *cs_68;  // device buffer
                                launch1d(locvolcalib_k12_segscan, /*threads=*/numS*numX*numY, ...);
                                launch1d(locvolcalib_k13_segscan, /*threads=*/numS*numX*numY, ...);
                            }
                        }
                        // results: a_59, a_70
                    }
                }
            }
        }
    }
}
