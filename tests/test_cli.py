"""CLI tests (direct main() invocation)."""

import json

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestList:
    def test_lists_all_benchmarks(self, capsys):
        code, out = run(capsys, "list")
        assert code == 0
        for name in ("matmul", "LocVolCalib", "Heston", "Pathfinder"):
            assert name in out


class TestShow:
    def test_show_moderate(self, capsys):
        code, out = run(capsys, "show", "matmul", "--mode", "moderate")
        assert code == 0
        assert "segmap^1" in out
        assert "redomap" in out

    def test_show_incremental_tree(self, capsys):
        code, out = run(capsys, "show", "matmul", "--tree")
        assert code == 0
        assert "t0" in out and "V0" in out

    def test_case_insensitive(self, capsys):
        code, _ = run(capsys, "show", "locvolcalib", "--mode", "moderate")
        assert code == 0

    def test_unknown_program(self, capsys):
        with pytest.raises(SystemExit):
            main(["show", "does-not-exist"])

    def test_show_parsed_file(self, capsys, tmp_path):
        f = tmp_path / "sumsq.fut"
        f.write_text(
            "def sumsq(xss: [n][m]f32) =\n"
            "  map (\\row -> redomap (+) (\\x -> x * x) 0.0 row) xss\n"
        )
        code, out = run(capsys, "show", str(f))
        assert code == 0
        assert "segred" in out or "segmap" in out


class TestRun:
    def test_run_matmul(self, capsys):
        code, out = run(capsys, "run", "matmul", "--size", "n=3,m=4")
        assert code == 0
        assert "shape=(3, 3)" in out

    def test_run_deterministic_seed(self, capsys):
        _, a = run(capsys, "run", "matmul", "--size", "n=2,m=2", "--seed", "7")
        _, b = run(capsys, "run", "matmul", "--size", "n=2,m=2", "--seed", "7")
        assert a == b

    def test_run_with_thresholds(self, capsys):
        code, _ = run(
            capsys, "run", "matmul", "--size", "n=2,m=2",
            "--threshold", "t0=1",
        )
        assert code == 0

    def test_run_exec_engines_agree(self, capsys):
        _, a = run(capsys, "run", "matmul", "--size", "n=3,m=4",
                   "--exec", "scalar")
        _, b = run(capsys, "run", "matmul", "--size", "n=3,m=4",
                   "--exec", "vector")
        assert a == b  # printed heads are bit-identical


class TestSimulate:
    def test_simulate(self, capsys):
        code, out = run(capsys, "simulate", "matmul", "--size", "n=64,m=64")
        assert code == 0
        assert "ms" in out and "kernels" in out

    def test_simulate_vega(self, capsys):
        _, k40 = run(capsys, "simulate", "matmul", "--size", "n=64,m=64")
        _, vega = run(
            capsys, "simulate", "matmul", "--size", "n=64,m=64",
            "--device", "Vega64",
        )
        assert k40 != vega

    def test_kernel_breakdown(self, capsys):
        code, out = run(
            capsys, "simulate", "matmul", "--size", "n=64,m=64", "--kernels"
        )
        assert code == 0
        assert "lvl" in out

    def test_bad_size_syntax(self):
        with pytest.raises(SystemExit):
            main(["simulate", "matmul", "--size", "n:64"])


class TestTune:
    def test_exhaustive(self, capsys):
        code, out = run(
            capsys, "tune", "matmul",
            "--dataset", "n=4,m=65536", "--dataset", "n=1024,m=32",
            "--technique", "exhaustive",
        )
        assert code == 0
        assert "best thresholds" in out

    def test_stochastic(self, capsys):
        code, out = run(
            capsys, "tune", "matmul",
            "--dataset", "n=32,m=1024",
            "--technique", "random", "--proposals", "50",
        )
        assert code == 0
        assert "dedup" in out

    def test_requires_dataset(self):
        with pytest.raises(SystemExit):
            main(["tune", "matmul"])

    def test_output_writes_tuning_and_telemetry(self, capsys, tmp_path):
        out_file = tmp_path / "m.tuning"
        code, out = run(
            capsys, "tune", "matmul", "--dataset", "n=32,m=1024",
            "--proposals", "10", "--output", str(out_file),
        )
        assert code == 0
        assert out_file.exists()
        telemetry = tmp_path / "m.tuning.telemetry.json"
        assert telemetry.exists()
        doc = json.loads(telemetry.read_text())
        assert doc["kind"] == "tuning-telemetry"
        assert doc["proposals"] == 10
        assert len(doc["cost_curve"]) == 10


class TestProfile:
    def test_profile_writes_valid_chrome_trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        code, out = run(
            capsys, "profile", "matmul", "--trace", str(trace),
            "--proposals", "12",
        )
        assert code == 0
        assert "trace summary" in out and "perf counters" in out
        doc = json.loads(trace.read_text())
        events = doc["traceEvents"]
        assert isinstance(events, list) and events
        names = {e["name"] for e in events}
        # spans for every compiler pass, ≥1 proposal, ≥1 kernel launch
        assert {"pass.normalize", "pass.fuse", "pass.simplify",
                "pass.flatten", "pass.codegen"} <= names
        assert "tuner.proposal" in names
        assert "kernel.launch" in names
        for ev in events:
            assert "ph" in ev and "ts" in ev or ev["ph"] == "M"

    def test_profile_without_trace_flag(self, capsys):
        code, out = run(capsys, "profile", "matmul", "--proposals", "6")
        assert code == 0
        assert "trace summary" in out

    def test_profile_table1_benchmark_default_datasets(self, capsys):
        code, out = run(capsys, "profile", "nw", "--proposals", "4")
        assert code == 0
        assert "tune[K40]" in out

    def test_profile_tracer_deactivated_afterwards(self, capsys):
        from repro import obs

        run(capsys, "profile", "matmul", "--proposals", "4")
        assert obs.current() is None

    def test_trace_flag_on_show(self, capsys, tmp_path):
        trace = tmp_path / "show.json"
        code, out = run(capsys, "show", "matmul", "--trace", str(trace))
        assert code == 0
        names = {e["name"] for e in json.loads(trace.read_text())["traceEvents"]}
        assert "pass.flatten" in names

    def test_trace_flag_on_tune(self, capsys, tmp_path):
        trace = tmp_path / "tune.json"
        code, _ = run(
            capsys, "tune", "matmul", "--dataset", "n=32,m=1024",
            "--proposals", "8", "--trace", str(trace),
        )
        assert code == 0
        names = {e["name"] for e in json.loads(trace.read_text())["traceEvents"]}
        assert "tuner.proposal" in names


class TestFigures:
    def test_fig2_subset(self, capsys):
        code, out = run(capsys, "figures", "fig2")
        assert code == 0
        assert "Figure 2" in out and "vendor" in out

    def test_code_subset(self, capsys):
        code, out = run(capsys, "figures", "code")
        assert code == 0
        assert "Code expansion" in out


class TestCheck:
    def test_check_single_program(self, capsys):
        code, out = run(capsys, "check", "matmul")
        assert code == 0
        assert "forced paths" in out and "check: ok" in out

    def test_check_with_fuzz_and_report(self, capsys, tmp_path):
        report = tmp_path / "report.json"
        code, out = run(
            capsys, "check", "nn", "--fuzz", "--max-examples", "5",
            "--report", str(report),
        )
        assert code == 0
        assert "no counterexample" in out
        doc = json.loads(report.read_text())
        assert doc["ok"] and doc["fuzz"]["examples"] == 5

    def test_check_unknown_program(self):
        with pytest.raises(SystemExit):
            main(["check", "not-a-benchmark"])

    def test_check_exec_vector_only(self, capsys):
        code, out = run(capsys, "check", "matmul", "--exec", "vector")
        assert code == 0
        assert "check: ok" in out

    def test_check_fuzz_corpus_out(self, capsys, tmp_path):
        # a clean fuzz run writes no corpus entries but accepts the flag
        corpus = tmp_path / "corpus"
        code, _ = run(
            capsys, "check", "matmul", "--fuzz", "--max-examples", "2",
            "--corpus-out", str(corpus),
        )
        assert code == 0
        assert not list(corpus.glob("*.json")) if corpus.exists() else True
