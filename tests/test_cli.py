"""CLI tests (direct main() invocation)."""

import json

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestList:
    def test_lists_all_benchmarks(self, capsys):
        code, out = run(capsys, "list")
        assert code == 0
        for name in ("matmul", "LocVolCalib", "Heston", "Pathfinder"):
            assert name in out


class TestShow:
    def test_show_moderate(self, capsys):
        code, out = run(capsys, "show", "matmul", "--mode", "moderate")
        assert code == 0
        assert "segmap^1" in out
        assert "redomap" in out

    def test_show_incremental_tree(self, capsys):
        code, out = run(capsys, "show", "matmul", "--tree")
        assert code == 0
        assert "t0" in out and "V0" in out

    def test_case_insensitive(self, capsys):
        code, _ = run(capsys, "show", "locvolcalib", "--mode", "moderate")
        assert code == 0

    def test_unknown_program(self, capsys):
        assert main(["show", "does-not-exist"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:") and "does-not-exist" in err
        assert len(err.strip().splitlines()) == 1  # one-line message

    def test_show_parsed_file(self, capsys, tmp_path):
        f = tmp_path / "sumsq.fut"
        f.write_text(
            "def sumsq(xss: [n][m]f32) =\n"
            "  map (\\row -> redomap (+) (\\x -> x * x) 0.0 row) xss\n"
        )
        code, out = run(capsys, "show", str(f))
        assert code == 0
        assert "segred" in out or "segmap" in out


class TestRun:
    def test_run_matmul(self, capsys):
        code, out = run(capsys, "run", "matmul", "--size", "n=3,m=4")
        assert code == 0
        assert "shape=(3, 3)" in out

    def test_run_deterministic_seed(self, capsys):
        _, a = run(capsys, "run", "matmul", "--size", "n=2,m=2", "--seed", "7")
        _, b = run(capsys, "run", "matmul", "--size", "n=2,m=2", "--seed", "7")
        assert a == b

    def test_run_with_thresholds(self, capsys):
        code, _ = run(
            capsys, "run", "matmul", "--size", "n=2,m=2",
            "--threshold", "t0=1",
        )
        assert code == 0

    def test_run_exec_engines_agree(self, capsys):
        _, a = run(capsys, "run", "matmul", "--size", "n=3,m=4",
                   "--exec", "scalar")
        _, b = run(capsys, "run", "matmul", "--size", "n=3,m=4",
                   "--exec", "vector")
        assert a == b  # printed heads are bit-identical


class TestSimulate:
    def test_simulate(self, capsys):
        code, out = run(capsys, "simulate", "matmul", "--size", "n=64,m=64")
        assert code == 0
        assert "ms" in out and "kernels" in out

    def test_simulate_vega(self, capsys):
        _, k40 = run(capsys, "simulate", "matmul", "--size", "n=64,m=64")
        _, vega = run(
            capsys, "simulate", "matmul", "--size", "n=64,m=64",
            "--device", "Vega64",
        )
        assert k40 != vega

    def test_kernel_breakdown(self, capsys):
        code, out = run(
            capsys, "simulate", "matmul", "--size", "n=64,m=64", "--kernels"
        )
        assert code == 0
        assert "lvl" in out

    def test_simulate_heals_recoverable_faults(self, capsys):
        # a bare simulate has no tuner above it to retry, so the CLI
        # self-heals transient injected faults; output must match fault-free
        _, clean = run(capsys, "simulate", "matmul", "--size", "n=64,m=64")
        plan = (
            '{"retries": 8, "rules": [{"site": "sim.kernel", '
            '"kind": "launch", "p": 0.3, "max_fires": 4}]}'
        )
        code, chaos = run(
            capsys, "simulate", "matmul", "--size", "n=64,m=64",
            "--faults", plan,
        )
        assert code == 0
        assert chaos == clean

    def test_bad_size_syntax(self, capsys):
        assert main(["simulate", "matmul", "--size", "n:64"]) == 2
        assert "key=value" in capsys.readouterr().err

    def test_non_integer_size(self, capsys):
        assert main(["simulate", "matmul", "--size", "n=big"]) == 2
        assert "integer" in capsys.readouterr().err

    def test_missing_size_variable_exits_2(self, capsys):
        assert main(["simulate", "matmul", "--size", "bogus=64"]) == 2
        err = capsys.readouterr().err
        assert "m, n" in err and "bogus" in err

    def test_run_missing_size_variable_exits_2(self, capsys):
        assert main(["run", "matmul", "--size", "n=4"]) == 2
        assert "--size value(s) for m" in capsys.readouterr().err

    def test_tune_missing_dataset_variable_exits_2(self, capsys):
        assert main(["tune", "matmul", "--dataset", "n=64"]) == 2
        assert "--dataset value(s) for m" in capsys.readouterr().err


class TestFusionFlag:
    def test_show_reports_fusion_mode(self, capsys):
        for fusion in ("ilp", "greedy", "off"):
            code, out = run(capsys, "show", "matmul", "--fusion", fusion)
            assert code == 0
            assert f"fusion={fusion}" in out

    def test_run_bit_identical_across_fusion_modes(self, capsys):
        outs = {
            fusion: run(capsys, "run", "NN", "--size", "numB=4,numP=16",
                        "--fusion", fusion)
            for fusion in ("ilp", "greedy", "off")
        }
        assert all(code == 0 for code, _ in outs.values())
        assert outs["ilp"][1] == outs["greedy"][1] == outs["off"][1]

    def test_bad_fusion_env_exits_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FUSION", "bogus")
        assert main(["show", "matmul"]) == 2
        assert "unknown fusion mode" in capsys.readouterr().err

    def test_stale_tuning_file_from_other_fusion_mode_exits_2(
        self, capsys, tmp_path, monkeypatch
    ):
        # the replay leg must resolve to the default (ilp) pipeline even
        # when the suite runs under an exported REPRO_FUSION
        monkeypatch.delenv("REPRO_FUSION", raising=False)
        out_file = tmp_path / "m.tuning"
        assert main(["tune", "matmul", "--dataset", "n=32,m=1024",
                     "--proposals", "6", "--fusion", "greedy",
                     "--output", str(out_file)]) == 0
        capsys.readouterr()
        # replaying under the (default) ILP pipeline must refuse loudly
        # rather than silently applying mismatched thresholds
        code = main(["simulate", "matmul", "--size", "n=8,m=8",
                     "--tuning", str(out_file)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "fusion mode 'greedy'" in err and "'ilp'" in err
        # the matching mode still accepts it
        assert main(["simulate", "matmul", "--size", "n=8,m=8",
                     "--fusion", "greedy", "--tuning", str(out_file)]) == 0

    def test_check_single_fusion_leg(self, capsys):
        code, out = run(
            capsys, "check", "matmul", "--mode", "incremental",
            "--exec", "scalar", "--max-paths", "8", "--fusion", "ilp",
        )
        assert code == 0
        assert "check: ok" in out


class TestTune:
    def test_exhaustive(self, capsys):
        code, out = run(
            capsys, "tune", "matmul",
            "--dataset", "n=4,m=65536", "--dataset", "n=1024,m=32",
            "--technique", "exhaustive",
        )
        assert code == 0
        assert "best thresholds" in out

    def test_stochastic(self, capsys):
        code, out = run(
            capsys, "tune", "matmul",
            "--dataset", "n=32,m=1024",
            "--technique", "random", "--proposals", "50",
        )
        assert code == 0
        assert "dedup" in out

    def test_requires_dataset(self, capsys):
        assert main(["tune", "matmul"]) == 2
        assert "--dataset" in capsys.readouterr().err

    def test_malformed_tuning_file_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.tuning"
        bad.write_text("{not json")
        code = main(["simulate", "matmul", "--size", "n=8,m=8",
                     "--tuning", str(bad)])
        assert code == 2
        assert "not a tuning file" in capsys.readouterr().err

    def test_device_mismatch_exits_2(self, capsys, tmp_path):
        out_file = tmp_path / "m.tuning"
        assert main(["tune", "matmul", "--dataset", "n=32,m=1024",
                     "--proposals", "6", "--output", str(out_file)]) == 0
        capsys.readouterr()
        code = main(["simulate", "matmul", "--size", "n=8,m=8",
                     "--device", "Vega64", "--tuning", str(out_file)])
        assert code == 2
        err = capsys.readouterr().err
        assert "K40" in err and "Vega64" in err

    def test_malformed_fault_plan_exits_2(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text('{"rules": [{"site": "sim.kernel", "kind": "nope"}]}')
        code = main(["tune", "matmul", "--dataset", "n=8,m=8",
                     "--proposals", "2", "--faults", str(plan)])
        assert code == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_resume_without_checkpoint_exits_2(self, capsys, tmp_path):
        out_file = tmp_path / "m.tuning"
        code = main(["tune", "matmul", "--dataset", "n=8,m=8",
                     "--resume", "--output", str(out_file)])
        assert code == 2
        assert "--resume" in capsys.readouterr().err

    def test_tune_under_recoverable_faults_matches_fault_free(
        self, capsys, tmp_path
    ):
        base, chaos = tmp_path / "a.tuning", tmp_path / "b.tuning"
        argv = ["tune", "matmul", "--dataset", "n=32,m=1024",
                "--proposals", "12"]
        assert main(argv + ["--output", str(base)]) == 0
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "seed": 5, "retries": 8,
            "rules": [{"site": "sim.kernel", "kind": "launch",
                       "p": 0.2, "max_fires": 4}],
        }))
        assert main(argv + ["--output", str(chaos),
                            "--faults", str(plan)]) == 0
        a = json.loads(base.read_text())
        b = json.loads(chaos.read_text())
        assert a["thresholds"] == b["thresholds"]
        ta = json.loads((tmp_path / "a.tuning.telemetry.json").read_text())
        tb = json.loads((tmp_path / "b.tuning.telemetry.json").read_text())
        assert ta == tb

    def test_checkpoint_deleted_after_successful_run(self, capsys, tmp_path):
        out_file = tmp_path / "m.tuning"
        assert main(["tune", "matmul", "--dataset", "n=32,m=1024",
                     "--proposals", "8", "--checkpoint-every", "1",
                     "--output", str(out_file)]) == 0
        assert out_file.exists()
        assert not (tmp_path / "m.tuning.ckpt.json").exists()

    def test_deadline_hit_retains_checkpoint_and_resume_completes(
        self, capsys, tmp_path
    ):
        # an injected delay on the first batch pushes the run past its
        # time budget after one checkpointed batch; the measurements in
        # that checkpoint are exactly what --resume needs, so the CLI
        # must keep it (deleting it here used to destroy them)
        out_file = tmp_path / "m.tuning"
        ckpt = tmp_path / "m.tuning.ckpt.json"
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"rules": [
            {"site": "tuner.batch", "kind": "delay",
             "at": [0], "delay_s": 0.3},
        ]}))
        argv = ["tune", "matmul", "--dataset", "n=32,m=1024",
                "--proposals", "12", "--batch-size", "4"]
        code, out = run(
            capsys, *argv, "--checkpoint-every", "1",
            "--time-budget", "0.05", "--output", str(out_file),
            "--faults", str(plan),
        )
        assert code == 0
        assert ckpt.exists()
        assert "time budget hit" in out and "--resume" in out

        # --resume finishes the search; only a *completed* run deletes
        # its checkpoint, and the result matches an uninterrupted run
        # byte for byte
        assert main(argv + ["--resume", "--output", str(out_file)]) == 0
        assert not ckpt.exists()
        baseline = tmp_path / "b.tuning"
        assert main(argv + ["--output", str(baseline)]) == 0
        assert out_file.read_text() == baseline.read_text()
        assert (tmp_path / "m.tuning.telemetry.json").read_text() == \
            (tmp_path / "b.tuning.telemetry.json").read_text()

    def test_output_writes_tuning_and_telemetry(self, capsys, tmp_path):
        out_file = tmp_path / "m.tuning"
        code, out = run(
            capsys, "tune", "matmul", "--dataset", "n=32,m=1024",
            "--proposals", "10", "--output", str(out_file),
        )
        assert code == 0
        assert out_file.exists()
        telemetry = tmp_path / "m.tuning.telemetry.json"
        assert telemetry.exists()
        doc = json.loads(telemetry.read_text())
        assert doc["kind"] == "tuning-telemetry"
        assert doc["proposals"] == 10
        assert len(doc["cost_curve"]) == 10


class TestProfile:
    def test_profile_writes_valid_chrome_trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        code, out = run(
            capsys, "profile", "matmul", "--trace", str(trace),
            "--proposals", "12",
        )
        assert code == 0
        assert "trace summary" in out and "perf counters" in out
        doc = json.loads(trace.read_text())
        events = doc["traceEvents"]
        assert isinstance(events, list) and events
        names = {e["name"] for e in events}
        # spans for every compiler pass, ≥1 proposal, ≥1 kernel launch
        assert {"pass.normalize", "pass.fuse", "pass.simplify",
                "pass.flatten", "pass.codegen"} <= names
        assert "tuner.proposal" in names
        assert "kernel.launch" in names
        for ev in events:
            assert "ph" in ev and "ts" in ev or ev["ph"] == "M"

    def test_profile_without_trace_flag(self, capsys):
        code, out = run(capsys, "profile", "matmul", "--proposals", "6")
        assert code == 0
        assert "trace summary" in out

    def test_profile_table1_benchmark_default_datasets(self, capsys):
        code, out = run(capsys, "profile", "nw", "--proposals", "4")
        assert code == 0
        assert "tune[K40]" in out

    def test_profile_tracer_deactivated_afterwards(self, capsys):
        from repro import obs

        run(capsys, "profile", "matmul", "--proposals", "4")
        assert obs.current() is None

    def test_trace_flag_on_show(self, capsys, tmp_path):
        trace = tmp_path / "show.json"
        code, out = run(capsys, "show", "matmul", "--trace", str(trace))
        assert code == 0
        names = {e["name"] for e in json.loads(trace.read_text())["traceEvents"]}
        assert "pass.flatten" in names

    def test_trace_flag_on_tune(self, capsys, tmp_path):
        trace = tmp_path / "tune.json"
        code, _ = run(
            capsys, "tune", "matmul", "--dataset", "n=32,m=1024",
            "--proposals", "8", "--trace", str(trace),
        )
        assert code == 0
        names = {e["name"] for e in json.loads(trace.read_text())["traceEvents"]}
        assert "tuner.proposal" in names


class TestFigures:
    def test_fig2_subset(self, capsys):
        code, out = run(capsys, "figures", "fig2")
        assert code == 0
        assert "Figure 2" in out and "vendor" in out

    def test_code_subset(self, capsys):
        code, out = run(capsys, "figures", "code")
        assert code == 0
        assert "Code expansion" in out


class TestCheck:
    def test_check_single_program(self, capsys):
        code, out = run(capsys, "check", "matmul")
        assert code == 0
        assert "forced paths" in out and "check: ok" in out

    def test_check_with_fuzz_and_report(self, capsys, tmp_path):
        report = tmp_path / "report.json"
        code, out = run(
            capsys, "check", "nn", "--fuzz", "--max-examples", "5",
            "--report", str(report),
        )
        assert code == 0
        assert "no counterexample" in out
        doc = json.loads(report.read_text())
        assert doc["ok"] and doc["fuzz"]["examples"] == 5

    def test_check_unknown_program(self, capsys):
        assert main(["check", "not-a-benchmark"]) == 2
        assert "not-a-benchmark" in capsys.readouterr().err

    def test_check_exec_vector_only(self, capsys):
        code, out = run(capsys, "check", "matmul", "--exec", "vector")
        assert code == 0
        assert "check: ok" in out

    def test_check_fuzz_corpus_out(self, capsys, tmp_path):
        # a clean fuzz run writes no corpus entries but accepts the flag
        corpus = tmp_path / "corpus"
        code, _ = run(
            capsys, "check", "matmul", "--fuzz", "--max-examples", "2",
            "--corpus-out", str(corpus),
        )
        assert code == 0
        assert not list(corpus.glob("*.json")) if corpus.exists() else True


class TestCheckChaosExitCodes:
    """--chaos exit-code convention: divergence exits 1 (a *finding*),
    a crash in the harness itself exits 2 via ``repro: error:``."""

    def test_divergence_exits_1(self, capsys, monkeypatch):
        from repro.check import chaos as chaos_mod

        def fake(names, seed):
            rep = chaos_mod.ChaosReport(program="matmul", seed=seed)
            rep.add("serial", False, "thresholds diverged: baseline X vs Y")
            return [rep]

        monkeypatch.setattr(chaos_mod, "chaos_tune_check", fake)
        code = main(["check", "matmul", "--chaos", "--max-paths", "4",
                     "--exec", "scalar", "--fusion", "ilp"])
        cap = capsys.readouterr()
        assert code == 1
        assert "FAIL" in cap.out and "thresholds diverged" in cap.out
        assert "repro: error:" not in cap.err

    def test_harness_error_exits_2(self, capsys, monkeypatch):
        from repro.check import chaos as chaos_mod

        def boom(names, seed):
            raise RuntimeError("spool directory vanished")

        monkeypatch.setattr(chaos_mod, "chaos_tune_check", boom)
        code = main(["check", "matmul", "--chaos", "--max-paths", "4",
                     "--exec", "scalar", "--fusion", "ilp"])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("repro: error:")
        assert "chaos harness error" in err and "spool directory" in err

    def test_unknown_program_is_usage_error(self, capsys, monkeypatch):
        from repro.check import chaos as chaos_mod

        def unknown(names, seed):
            raise KeyError("unknown benchmark program 'nope'")

        monkeypatch.setattr(chaos_mod, "chaos_tune_check", unknown)
        code = main(["check", "matmul", "--chaos", "--max-paths", "4",
                     "--exec", "scalar", "--fusion", "ilp"])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("repro: error:") and "nope" in err


class TestVerifyRate:
    def test_run_verify_rate_flag_pins_rate(self, capsys):
        from repro.exec import guard

        try:
            code, _ = run(capsys, "run", "matmul", "--size", "n=3,m=4",
                          "--exec", "codegen", "--verify-rate", "0.5")
            assert code == 0
            assert guard.verify_rate() == 0.5
        finally:
            guard.set_verify_rate(None)

    def test_verified_run_stays_correct(self, capsys):
        from repro.exec import guard

        try:
            code, out1 = run(capsys, "run", "Heston", "--size",
                             "numQuotes=16,numCand=4,numInt=8",
                             "--exec", "codegen", "--verify-rate", "1.0")
            assert code == 0
            guard.set_verify_rate(None)
            code, out2 = run(capsys, "run", "Heston", "--size",
                             "numQuotes=16,numCand=4,numInt=8",
                             "--exec", "scalar")
            assert code == 0
            assert out1 == out2  # sampled oracle re-runs change nothing
        finally:
            guard.set_verify_rate(None)
