"""Injector determinism, budgets, retry wrapper, and activation scoping."""

import pytest

from repro import faults, perf
from repro.faults import (
    FaultPlan,
    FaultRule,
    Injector,
    InjectedOOMFault,
    KernelLaunchFault,
    TransientFault,
)


def plan_of(*rules, retries=8, backoff_s=0.0, seed=0):
    return FaultPlan(seed=seed, rules=tuple(rules), retries=retries,
                     backoff_s=backoff_s)


class TestDeterminism:
    def test_same_seed_same_fires(self):
        plan = plan_of(FaultRule(site="s", kind="launch", p=0.3))

        def fire_pattern():
            inj = Injector(plan)
            out = []
            for _ in range(50):
                try:
                    inj.check("s")
                    out.append(False)
                except KernelLaunchFault:
                    out.append(True)
            return out

        assert fire_pattern() == fire_pattern()
        assert any(fire_pattern())

    def test_different_seeds_differ(self):
        def fire_pattern(seed):
            inj = Injector(plan_of(
                FaultRule(site="s", kind="launch", p=0.3), seed=seed))
            out = []
            for _ in range(100):
                try:
                    inj.check("s")
                    out.append(False)
                except KernelLaunchFault:
                    out.append(True)
            return out

        assert fire_pattern(0) != fire_pattern(1)

    def test_deterministic_kind_keyed_not_counted(self):
        # an "oom" draw depends on the key, not the invocation index:
        # the same key fails on every attempt, in any order
        inj = Injector(plan_of(FaultRule(site="s", kind="oom", p=0.5)))
        verdicts = {}
        for key in ("a", "b", "c", "d", "e", "f"):
            try:
                inj.check("s", key=key)
                verdicts[key] = False
            except InjectedOOMFault:
                verdicts[key] = True
        inj2 = Injector(plan_of(FaultRule(site="s", kind="oom", p=0.5)))
        for key in reversed(sorted(verdicts)):
            try:
                inj2.check("s", key=key)
                assert verdicts[key] is False
            except InjectedOOMFault:
                assert verdicts[key] is True
        assert True in verdicts.values() and False in verdicts.values()

    def test_transient_retry_gets_fresh_draw(self):
        # p=1.0 with max_fires=1: first attempt fails, retry succeeds
        inj = Injector(plan_of(
            FaultRule(site="s", kind="launch", p=1.0, max_fires=1)))
        with pytest.raises(KernelLaunchFault):
            inj.check("s")
        inj.check("s")  # budget spent: no further fires


class TestTriggers:
    def test_at_trigger(self):
        inj = Injector(plan_of(FaultRule(site="s", kind="launch", at=(2,))))
        inj.check("s")
        inj.check("s")
        with pytest.raises(KernelLaunchFault):
            inj.check("s")
        inj.check("s")

    def test_site_wildcard(self):
        inj = Injector(plan_of(FaultRule(site="sim.*", kind="launch", at=(0,))))
        inj.check("interp.kernel")  # no match
        with pytest.raises(KernelLaunchFault):
            inj.check("sim.kernel")

    def test_max_fires_caps_total(self):
        inj = Injector(plan_of(
            FaultRule(site="s", kind="launch", p=1.0, max_fires=3)))
        fails = 0
        for _ in range(10):
            try:
                inj.check("s")
            except KernelLaunchFault:
                fails += 1
        assert fails == 3

    def test_fires_counter(self):
        inj = Injector(plan_of(
            FaultRule(site="s", kind="launch", p=1.0, max_fires=2)))
        for _ in range(5):
            try:
                inj.check("s")
            except KernelLaunchFault:
                pass
        assert inj.fires() == 2

    def test_delay_kind_does_not_raise(self):
        inj = Injector(plan_of(FaultRule(site="s", kind="delay", at=(0,))))
        inj.check("s")  # sleeps 0s, no exception


class TestActivation:
    def test_injected_restores_previous(self):
        outer = plan_of()
        inner = plan_of(seed=1)
        with faults.injected(outer):
            with faults.injected(inner):
                assert faults.active_plan() is inner
            assert faults.active_plan() is outer
        assert faults.active_plan() is None

    def test_suspended_restores(self):
        with faults.injected(plan_of()):
            with faults.suspended():
                assert not faults.enabled()
            assert faults.enabled()

    def test_module_check_noop_without_plan(self):
        assert not faults.enabled()
        faults.check("anything")  # must be free and silent

    def test_injected_counter(self):
        plan = plan_of(FaultRule(site="s", kind="launch", at=(0,)))
        perf.reset()
        with faults.injected(plan):
            with pytest.raises(KernelLaunchFault):
                faults.check("s")
        assert perf.counters()["faults.injected.launch"] == 1


class TestRetrying:
    def test_recovers_within_budget(self):
        plan = plan_of(
            FaultRule(site="s", kind="launch", p=1.0, max_fires=3),
            retries=8,
        )
        perf.reset()
        with faults.injected(plan):
            assert faults.retrying("s", lambda: 42) == 42
        assert perf.counters()["faults.retries"] == 3

    def test_budget_exhausted_raises(self):
        plan = plan_of(FaultRule(site="s", kind="launch", p=1.0), retries=2)
        with faults.injected(plan):
            with pytest.raises(TransientFault):
                faults.retrying("s", lambda: 42)

    def test_deterministic_fault_propagates(self):
        plan = plan_of(FaultRule(site="s", kind="oom", at=(0,)), retries=8)
        perf.reset()
        with faults.injected(plan):
            with pytest.raises(InjectedOOMFault):
                faults.retrying("s", lambda: 42)
        assert perf.counters().get("faults.retries", 0) == 0

    def test_no_plan_fast_path(self):
        assert faults.retrying("s", lambda: "ok") == "ok"
