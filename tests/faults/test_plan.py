"""Fault-plan parsing, validation, and budget accounting."""

import json

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    default_chaos_plan,
    load_plan,
    plan_from_env,
)


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultRule(site="sim.kernel", kind="meteor").validate()

    def test_probability_out_of_range(self):
        with pytest.raises(FaultPlanError, match="probability"):
            FaultRule(site="sim.kernel", kind="launch", p=1.5).validate()

    def test_negative_max_fires(self):
        with pytest.raises(FaultPlanError, match="max_fires"):
            FaultRule(site="s", kind="launch", max_fires=-1).validate()

    def test_negative_delay(self):
        with pytest.raises(FaultPlanError, match="delay_s"):
            FaultRule(site="s", kind="delay", delay_s=-0.1).validate()

    def test_empty_site(self):
        with pytest.raises(FaultPlanError, match="site"):
            FaultRule(site="", kind="launch").validate()

    def test_all_kinds_accepted(self):
        for kind in FAULT_KINDS:
            FaultRule(site="s", kind=kind, p=0.5).validate()


class TestJsonRoundTrip:
    def test_rule_round_trip(self):
        rule = FaultRule(
            site="sim.*", kind="timeout", p=0.25, at=(0, 3), max_fires=2,
            delay_s=0.5,
        )
        assert FaultRule.from_json(rule.to_json()) == rule

    def test_plan_round_trip(self):
        plan = FaultPlan(
            seed=7,
            rules=(FaultRule(site="sim.kernel", kind="launch", p=0.1),),
            retries=4,
            backoff_s=0.01,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_rule_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault rule field"):
            FaultRule.from_json({"site": "s", "kind": "launch", "prob": 0.5})

    def test_unknown_plan_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault plan field"):
            FaultPlan.from_json({"seeed": 1, "rules": []})

    def test_rule_missing_site(self):
        with pytest.raises(FaultPlanError):
            FaultRule.from_json({"kind": "launch"})

    def test_plan_rules_must_be_list(self):
        with pytest.raises(FaultPlanError, match="list"):
            FaultPlan.from_json({"rules": {"site": "s"}})

    def test_non_dict_plan(self):
        with pytest.raises(FaultPlanError, match="object"):
            FaultPlan.from_json([1, 2])


class TestLoadPlan:
    def test_inline_json(self):
        plan = load_plan('{"seed": 3, "rules": []}')
        assert plan.seed == 3 and plan.rules == ()

    def test_from_file(self, tmp_path):
        p = tmp_path / "plan.json"
        p.write_text(json.dumps(
            {"rules": [{"site": "sim.kernel", "kind": "launch", "p": 0.5}]}
        ))
        plan = load_plan(str(p))
        assert plan.rules[0].kind == "launch"

    def test_missing_file(self, tmp_path):
        with pytest.raises(FaultPlanError, match="cannot read"):
            load_plan(str(tmp_path / "nope.json"))

    def test_malformed_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{oops")
        with pytest.raises(FaultPlanError, match="not a fault plan"):
            load_plan(str(p))

    def test_env_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", '{"seed": 9, "rules": []}')
        plan = plan_from_env()
        assert plan is not None and plan.seed == 9

    def test_env_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert plan_from_env() is None


class TestBudgets:
    def test_consume_reduces_budget(self):
        plan = FaultPlan(rules=(
            FaultRule(site="w", kind="worker_crash", p=1.0, max_fires=2),
        ))
        spent = plan.consume("worker_crash", 1)
        assert spent.rules[0].max_fires == 1
        gone = spent.consume("worker_crash", 1)
        assert gone.rules == ()  # exhausted rules are dropped

    def test_consume_ignores_other_kinds(self):
        plan = FaultPlan(rules=(
            FaultRule(site="s", kind="launch", p=0.5, max_fires=3),
        ))
        assert plan.consume("worker_crash", 5) == plan

    def test_max_total_fires_bounded(self):
        plan = default_chaos_plan()
        bound = plan.max_total_fires()
        assert bound is not None
        assert plan.retries > bound  # recoverable by construction

    def test_max_total_fires_unbounded(self):
        plan = FaultPlan(rules=(
            FaultRule(site="s", kind="launch", p=0.1),  # no max_fires
        ))
        assert plan.max_total_fires() is None

    def test_at_only_rule_is_bounded(self):
        plan = FaultPlan(rules=(
            FaultRule(site="s", kind="launch", at=(0, 4)),
        ))
        assert plan.max_total_fires() == 2

    def test_reseeded(self):
        plan = default_chaos_plan(seed=1)
        assert plan.reseeded(42).seed == 42
        assert plan.reseeded(42).rules == plan.rules
