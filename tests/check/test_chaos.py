"""Chaos differential: fault injection must never change a result.

The in-process legs exercise the full matrix (serial chaos, workers with
a crash, checkpoint resume, forced-path sweeps) over three benchmarks of
different shape; the subprocess tests are the real kill + ``--resume``
round-trip (an injected ``process_kill`` hard-exits the tuning process
mid-search, exactly like ``kill -9``).
"""

import json
import os
import subprocess
import sys

import pytest

from repro import faults
from repro.check import chaos_plan, chaos_tune_check
from repro.check.chaos import DEFAULT_PROGRAMS
from repro.compiler import compile_program
from repro.faults import FaultPlan, FaultRule
from repro.gpu import K40
from repro.tuning.tuner import Autotuner

from repro.bench.programs.matmul import matmul_program, matmul_sizes

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def leg(report, name):
    return next(l for l in report.legs if l.name == name)


class TestChaosDifferential:
    @pytest.mark.parametrize("name", DEFAULT_PROGRAMS)
    def test_bit_identical_under_chaos(self, name):
        (report,) = chaos_tune_check(
            [name], seed=0, proposals=12, batch_size=4, workers=2,
            max_paths=8,
        )
        detail = {l.name: l.detail for l in report.legs if not l.ok}
        assert report.ok, f"{name}: {detail}"
        assert {l.name for l in report.legs} == {
            "serial", "workers", "resume", "forced-paths"
        }

    def test_unrecoverable_plan_is_rejected(self):
        bad = FaultPlan(rules=(
            FaultRule(site="sim.kernel", kind="launch", p=0.1),  # unbounded
        ))
        (report,) = chaos_tune_check(["matmul"], plan=bad)
        assert not report.ok
        assert "recoverable" in leg(report, "plan").detail

    def test_covers_at_least_three_benchmarks(self):
        assert len(DEFAULT_PROGRAMS) >= 3

    def test_chaos_plan_is_recoverable(self):
        plan = chaos_plan(seed=123)
        assert plan.max_total_fires() is not None
        assert plan.retries > plan.max_total_fires()


class TestWorkerCrashRecovery:
    # a worker hard-exiting can trip a CPython race in the pool's own
    # management thread ("dictionary changed size during iteration" in
    # _ThreadWakeup bookkeeping); it is harmless — the pool is being torn
    # down for respawn anyway — but surfaces as a thread-exception warning
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_four_workers_with_crashes_match_serial(self):
        cp = compile_program(matmul_program(), "incremental")
        train = [matmul_sizes(e, 20) for e in (2, 6, 10)]
        baseline = Autotuner(cp, train, K40, seed=7).tune(
            max_proposals=16, batch_size=4
        )
        plan = FaultPlan(seed=3, rules=(
            FaultRule(site="worker.eval", kind="worker_crash", p=0.4,
                      max_fires=2),
        ))
        with faults.injected(plan):
            crashed = Autotuner(cp, train, K40, seed=7).tune(
                max_proposals=16, batch_size=4, workers=4
            )
        assert crashed.best_thresholds == baseline.best_thresholds
        assert crashed.best_cost == baseline.best_cost
        assert crashed.full_history == baseline.full_history


class TestKillResumeRoundTrip:
    """The subprocess analogue of CI's chaos smoke: a tuning process is
    hard-killed mid-search (exit 137), then ``--resume`` completes it to
    the bit-identical artifact an uninterrupted run produces."""

    def repro(self, *argv, cwd):
        env = dict(os.environ, PYTHONPATH=os.path.abspath(REPO_SRC))
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            cwd=cwd, env=env, capture_output=True, text=True, timeout=300,
        )

    def test_kill_resume_bit_identical(self, tmp_path):
        args = ("tune", "matmul", "--dataset", "n=32,m=1024",
                "--dataset", "n=1024,m=32", "--proposals", "16",
                "--checkpoint-every", "1")

        base = self.repro(*args, "--output", "base.tuning", cwd=tmp_path)
        assert base.returncode == 0, base.stderr

        kill_plan = tmp_path / "kill.json"
        kill_plan.write_text(json.dumps({
            "rules": [{"site": "tuner.batch", "kind": "process_kill",
                       "at": [6]}],
        }))
        killed = self.repro(*args, "--output", "out.tuning",
                            "--faults", str(kill_plan), cwd=tmp_path)
        assert killed.returncode == 137, (
            f"expected SIGKILL-style exit, got {killed.returncode}: "
            f"{killed.stderr}"
        )
        assert not (tmp_path / "out.tuning").exists()
        assert (tmp_path / "out.tuning.ckpt.json").exists()

        resumed = self.repro(*args, "--output", "out.tuning", "--resume",
                             cwd=tmp_path)
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming" in resumed.stdout

        a = json.loads((tmp_path / "base.tuning").read_text())
        b = json.loads((tmp_path / "out.tuning").read_text())
        assert a == b
        ta = json.loads((tmp_path / "base.tuning.telemetry.json").read_text())
        tb = json.loads((tmp_path / "out.tuning.telemetry.json").read_text())
        assert ta == tb
        # the successful resume cleans its checkpoint up
        assert not (tmp_path / "out.tuning.ckpt.json").exists()

    def test_checkpoint_survives_kill_during_write_window(self, tmp_path):
        # kill at the very first batch: the checkpoint may not exist yet,
        # in which case --resume must fail with a clear user error
        kill_plan = tmp_path / "kill.json"
        kill_plan.write_text(json.dumps({
            "rules": [{"site": "tuner.batch", "kind": "process_kill",
                       "at": [0]}],
        }))
        args = ("tune", "matmul", "--dataset", "n=32,m=1024",
                "--proposals", "8", "--output", "out.tuning")
        killed = self.repro(*args, "--faults", str(kill_plan), cwd=tmp_path)
        assert killed.returncode == 137
        ckpt = tmp_path / "out.tuning.ckpt.json"
        resumed = self.repro(*args, "--resume", cwd=tmp_path)
        if ckpt.exists():
            assert resumed.returncode == 0
        else:
            assert resumed.returncode == 2
            assert "repro: error:" in resumed.stderr
