"""Forced-path enumeration and the differential executor."""

import numpy as np
import pytest

from repro.check.differential import (
    CHECK_DATASETS,
    bit_equal,
    builtin_programs,
    differential_check,
    enumerate_forced_paths,
    FORCE_FALSE,
    FORCE_TRUE,
)
from repro.compiler import compile_program
from repro.flatten.versions import BranchNode


def test_enumerate_single_node():
    tree = BranchNode("t0", None, 1, 2)
    paths, truncated = enumerate_forced_paths([tree], max_paths=100)
    assert not truncated
    assert {frozenset(p.items()) for p in paths} == {
        frozenset({("t0", FORCE_TRUE)}),
        frozenset({("t0", FORCE_FALSE)}),
    }


def test_enumerate_nested_tree():
    # t0 true -> leaf; t0 false -> t1 decides
    tree = BranchNode("t0", None, 1, [BranchNode("t1", None, 2, 3)])
    paths, truncated = enumerate_forced_paths([tree], max_paths=100)
    assert not truncated
    assert len(paths) == 3  # {t0=T}, {t0=F,t1=T}, {t0=F,t1=F}


def test_enumerate_crosses_independent_trees():
    trees = [BranchNode("t0", None, 1, 2), BranchNode("t1", None, 3, 4)]
    paths, truncated = enumerate_forced_paths(trees, max_paths=100)
    assert not truncated
    assert len(paths) == 4


def test_enumerate_truncates_explicitly():
    trees = [BranchNode(f"t{i}", None, 1, 2) for i in range(6)]
    paths, truncated = enumerate_forced_paths(trees, max_paths=10)
    assert truncated
    assert len(paths) == 10


def test_enumerate_single_version_no_trees():
    """A guard-free program has exactly one path: the empty assignment."""
    paths, truncated = enumerate_forced_paths([], max_paths=10)
    assert paths == [{}] and not truncated


def test_enumerate_moderate_program_is_single_version():
    from repro.bench.programs.matmul import matmul_program

    cp = compile_program(matmul_program(), "moderate")
    paths, truncated = enumerate_forced_paths(cp.branching_trees(), max_paths=10)
    assert paths == [{}] and not truncated


def test_enumerate_shared_threshold_siblings_prune_impossible():
    """Two sibling trees guarded by the same threshold cannot be forced
    in opposite directions: the cross product collapses to two paths."""
    trees = [BranchNode("t0", None, 1, 2), BranchNode("t0", None, 3, 4)]
    paths, truncated = enumerate_forced_paths(trees, max_paths=100)
    assert not truncated
    assert {frozenset(p.items()) for p in paths} == {
        frozenset({("t0", FORCE_TRUE)}),
        frozenset({("t0", FORCE_FALSE)}),
    }


def test_enumerate_shared_threshold_nested_in_sibling():
    """A shared threshold nested inside one sibling only constrains the
    combinations where that guard is actually reached."""
    trees = [
        BranchNode("t0", None, 1, 2),
        BranchNode("t1", None, 3, [BranchNode("t0", None, 4, 5)]),
    ]
    paths, truncated = enumerate_forced_paths(trees, max_paths=100)
    assert not truncated
    # tree1 x tree2 = 2 x 3 = 6 combos; the two forcing t0 both ways die
    assert len(paths) == 4
    for p in paths:
        assert p["t0"] in (FORCE_TRUE, FORCE_FALSE)


def test_bit_equal_is_exact():
    a = np.array([1.0, 2.0], dtype=np.float32)
    assert bit_equal(a, a.copy())
    assert not bit_equal(a, a.astype(np.float64))
    assert not bit_equal(a, a + np.float32(1e-7))
    assert bit_equal(np.float32(3.0), np.float32(3.0))


def test_every_builtin_has_check_datasets():
    progs = builtin_programs()
    assert set(CHECK_DATASETS) == set(progs)


@pytest.mark.parametrize("name", ["matmul", "NW"])
def test_differential_check_passes(name):
    prog = builtin_programs()[name]()
    report = differential_check(prog, CHECK_DATASETS[name][:1])
    assert report.ok
    assert report.paths_checked > 0
    doc = report.to_json()
    assert doc["ok"] and doc["program"] == prog.name


def test_differential_check_catches_divergence():
    """A deliberately broken compiled body must be reported, not masked."""
    prog = builtin_programs()["matmul"]()
    cp = compile_program(prog, "incremental")

    report = differential_check(prog, CHECK_DATASETS["matmul"][:1])
    assert report.ok  # sanity: unbroken pipeline passes

    # Forcing a wrong interpretation: run with a body whose result is
    # doubled.  differential_check recompiles internally, so instead we
    # check the bit-comparison path on doctored outputs.
    out = cp.run({"xss": np.ones((2, 3), np.float32),
                  "yss": np.ones((3, 2), np.float32)})
    assert not bit_equal(out[0], 2 * out[0])
