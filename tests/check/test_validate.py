"""The IR validator must accept well-formed programs and pinpoint broken ones."""

import pytest

from repro.check import ValidationError, set_validation, validation_enabled
from repro.check.validate import validate
from repro.compiler import compile_program
from repro.flatten import ThresholdRegistry
from repro.ir import source as S
from repro.ir import target as T
from repro.ir.builder import Program, f32, if_, lam, map_, v
from repro.ir.types import F32, I64, array_of
from repro.sizes import SizeVar


def _simple_env():
    n = SizeVar("n")
    return {"xs": array_of(F32, n)}


def test_accepts_wellformed():
    env = _simple_env()
    body = map_(lam(lambda x: x * x), v("xs"))
    (t,) = validate(body, env, stage="t")
    assert t == array_of(F32, SizeVar("n"))


def test_rejects_unbound_variable():
    with pytest.raises(ValidationError) as ei:
        validate(v("nope"), _simple_env(), stage="t")
    assert ei.value.invariant == "scoping"
    assert "nope" in str(ei.value)


def test_scope_error_reports_path():
    body = map_(lam(lambda x: x + v("ghost")), v("xs"))
    with pytest.raises(ValidationError) as ei:
        validate(body, _simple_env())
    assert "map.lam" in "/".join(ei.value.path)


def test_rejects_type_error():
    body = S.BinOp("+", v("xs"), f32(1.0))  # array + scalar is ill-typed
    with pytest.raises(ValidationError) as ei:
        validate(body, _simple_env())
    assert ei.value.invariant == "typing"


def test_rejects_parcmp_outside_condition():
    bad = S.Let(("c",), T.ParCmp(SizeVar("n"), "t0"), if_(v("c"), f32(1.0), f32(2.0)))
    with pytest.raises(ValidationError) as ei:
        validate(bad, {})
    assert ei.value.invariant == "guard-position"


def test_rejects_duplicate_guard():
    guard = lambda: T.ParCmp(SizeVar("n"), "t0")  # noqa: E731
    bad = if_(guard(), if_(guard(), f32(1.0), f32(2.0)), f32(3.0))
    with pytest.raises(ValidationError) as ei:
        validate(bad, {})
    assert ei.value.invariant == "guard-uniqueness"


def test_rejects_unregistered_threshold():
    body = if_(T.ParCmp(SizeVar("n"), "mystery"), f32(1.0), f32(2.0))
    with pytest.raises(ValidationError) as ei:
        validate(body, {}, registry=ThresholdRegistry())
    assert ei.value.invariant == "guard-registry"


def test_rejects_result_type_change():
    with pytest.raises(ValidationError) as ei:
        validate(f32(1.0), {}, expect=(I64,))
    assert ei.value.invariant == "type-preservation"


def test_compiled_program_validates_clean():
    n, m = SizeVar("n"), SizeVar("m")
    prog = Program(
        "t",
        [("xss", array_of(F32, n, m))],
        map_(lambda row: map_(lam(lambda x: x * x), row), v("xss")),
    )
    cp = compile_program(prog, "incremental")
    cp.check()  # must not raise


def test_set_validation_overrides_env(monkeypatch):
    monkeypatch.delenv("REPRO_VALIDATE", raising=False)
    try:
        set_validation(True)
        assert validation_enabled()
        set_validation(False)
        assert not validation_enabled()
        set_validation(None)
        assert not validation_enabled()
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        assert validation_enabled()
    finally:
        set_validation(True)  # restore the suite-wide fixture's state
