"""Generator, shrinker, fuzz driver, and regression-corpus replay."""

import json
import random
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings

from repro.check.fuzz import check_recipe, load_corpus, run_fuzz
from repro.check.genprog import (
    build_program,
    random_recipe,
    recipe_datasets,
    recipes,
    shrink_recipe,
)

CORPUS_DIR = Path(__file__).parent.parent / "corpus"


def test_random_recipes_build_and_typecheck():
    rng = random.Random(42)
    for _ in range(25):
        recipe = random_recipe(rng)
        prog = build_program(recipe)  # Program.check() type-checks
        assert prog.params[0][0] == "xss"


def test_recipes_are_json_serialisable():
    rng = random.Random(7)
    recipe = random_recipe(rng)
    assert json.loads(json.dumps(recipe)) == recipe


def test_recipe_datasets_gives_two_shapes():
    recipe = {"sizes": {"n": 2, "m": 3}, "body": {"k": "mat", "e": {"k": "xss"}}}
    first, second = recipe_datasets(recipe)
    assert first == {"n": 2, "m": 3}
    assert second != first


def test_differential_on_random_recipes():
    rng = random.Random(3)
    for _ in range(10):
        report = check_recipe(random_recipe(rng))
        assert report.ok, report.to_json()


@given(recipes(max_depth=2))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_hypothesis_recipes_pass_differential(recipe):
    report = check_recipe(recipe)
    assert report.ok, report.to_json()


def test_shrinker_reaches_a_minimal_recipe():
    # "fails" whenever the body still contains a scan anywhere
    def has_scan(node):
        if isinstance(node, dict):
            return node.get("k") in ("scan", "scanmap") or any(
                has_scan(v) for v in node.values()
            )
        return False

    recipe = {
        "sizes": {"n": 4, "m": 4},
        "body": {
            "k": "rowsum",
            "s": {"k": "red", "op": "+",
                  "src": {"k": "vmap", "f": ["sq", "addc"],
                          "src": {"k": "scan", "op": "+", "src": {"k": "r"}}}},
            "src": {"k": "maprows", "row": {"k": "vmap", "f": ["neg"],
                                            "src": {"k": "r"}},
                    "src": {"k": "xss"}},
        },
    }
    shrunk = shrink_recipe(recipe, lambda r: has_scan(r["body"]))
    assert has_scan(shrunk["body"])
    # the wrapping vmap, the maprows decoration and the sizes must be gone
    assert shrunk["sizes"] == {"n": 1, "m": 1}
    assert json.dumps(shrunk).count('"k"') <= 5


def test_run_fuzz_clean_and_reports():
    report = run_fuzz(max_examples=15, seed=11)
    assert report.ok, [f.error for f in report.failures]
    doc = report.to_json()
    assert doc["examples"] == 15 and doc["ok"]
    assert doc["fusions"] == ["ilp", "off"] and doc["style"] == "default"


def test_fusion_style_recipes_hit_fusable_shapes():
    """The fusion-weighted grammar actually generates the shapes the ILP
    pass exists for (fan-out, shared producers), not just default noise."""
    blob = json.dumps(
        [random_recipe(random.Random(s), style="fusion") for s in range(40)]
    )
    assert '"share"' in blob and '"fansum"' in blob


def test_run_fuzz_fusion_style_clean():
    report = run_fuzz(max_examples=10, seed=5, style="fusion")
    assert report.ok, [f.error for f in report.failures]
    assert report.to_json()["style"] == "fusion"


def test_corpus_exists_and_replays():
    corpus = load_corpus(CORPUS_DIR)
    assert len(corpus) >= 5, "regression corpus went missing"
    for name, recipe in corpus:
        report = check_recipe(recipe, name=name)
        assert report.ok, (name, report.to_json())


@pytest.mark.parametrize(
    "kind",
    ["colred", "matloop", "vif", "sum", "scanmap", "dif", "dloop", "vintr",
     "share", "fansum"],
)
def test_corpus_covers_flattening_rules(kind):
    """The seed corpus must keep exercising each interesting recipe kind."""
    blob = "".join(
        json.dumps(recipe) for _, recipe in load_corpus(CORPUS_DIR)
    )
    assert f'"{kind}"' in blob
