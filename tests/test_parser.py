"""Parser tests: grammar coverage, precedence, errors, and agreement with
the builder-constructed benchmark programs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.interp import Evaluator, run_program
from repro.ir import source as S
from repro.ir.types import F32, F64, I32, I64, ArrayType
from repro.parser import LexError, ParseError, parse_exp, parse_program, parse_programs, tokenize

EV = Evaluator(sizes={"n": 4, "m": 3})


def ev(src, **env):
    return EV.eval1(parse_exp(src), env)


class TestLexer:
    def test_keywords_vs_idents(self):
        toks = tokenize("map mapper")
        assert toks[0].kind == "kw" and toks[1].kind == "ident"

    def test_numbers(self):
        kinds = [t.kind for t in tokenize("1 2.5 3i32 4.0f64")][:-1]
        assert kinds == ["int", "float", "int", "float"]

    def test_comments_skipped(self):
        toks = tokenize("1 -- a comment\n2")
        assert [t.text for t in toks[:-1]] == ["1", "2"]

    def test_positions(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_lex_error(self):
        with pytest.raises(LexError):
            tokenize("a # b")

    def test_two_char_ops(self):
        texts = [t.text for t in tokenize("-> == <= >= != && ||")][:-1]
        assert texts == ["->", "==", "<=", ">=", "!=", "&&", "||"]


class TestLiterals:
    def test_default_int_is_i64(self):
        e = parse_exp("42")
        assert isinstance(e, S.Lit) and e.type == I64

    def test_default_float_is_f32(self):
        e = parse_exp("4.5")
        assert e.type == F32

    def test_suffixes(self):
        assert parse_exp("1i32").type == I32
        assert parse_exp("1f32").type == F32
        assert parse_exp("2.5f64").type == F64

    def test_bools(self):
        assert parse_exp("true").value is True
        assert parse_exp("false").value is False


class TestPrecedence:
    def test_mul_over_add(self):
        assert ev("2 + 3 * 4") == 14

    def test_parens(self):
        assert ev("(2 + 3) * 4") == 20

    def test_comparison_looser_than_arith(self):
        assert ev("1 + 1 == 2") is True

    def test_logical_loosest(self):
        assert ev("1 < 2 && 3 < 4") is True
        assert ev("1 < 2 || 1 > 2") is True

    def test_left_associative_sub(self):
        assert ev("10 - 3 - 2") == 5

    def test_unary_neg(self):
        assert ev("-3 + 5") == 2

    def test_index_tighter_than_ops(self):
        xs = np.asarray([10, 20], np.int64)
        assert ev("xs[1] + 1", xs=xs) == 21


class TestConstructs:
    def test_let_multi(self):
        e = parse_exp("let a b = (1, 2) in a + b")
        assert EV.eval1(e, {}) == 3

    def test_nested_let(self):
        assert ev("let a = 1 in let b = a + 1 in b * 10") == 20

    def test_if(self):
        assert ev("if true then 1 else 2") == 1

    def test_loop_multi_state(self):
        e = parse_exp("loop a b = 0 1 for i < 4 do (b, a + b)")
        outs = EV.eval(e, {})
        assert (outs[0], outs[1]) == (3, 5)

    def test_lambda_sugar(self):
        e = parse_exp("map (\\x -> x + 1) xs")
        out = EV.eval1(e, {"xs": np.asarray([1, 2], np.int64)})
        assert np.array_equal(out, [2, 3])

    def test_operator_section(self):
        e = parse_exp("reduce (+) 0 xs")
        assert EV.eval1(e, {"xs": np.asarray([1, 2, 3], np.int64)}) == 6

    def test_max_section(self):
        e = parse_exp("reduce (max) 0 xs")
        assert EV.eval1(e, {"xs": np.asarray([4, 9, 2], np.int64)}) == 9

    def test_builtin_unary(self):
        assert ev("sqrt 9.0") == 3.0
        assert ev("to_i64 3.7") == 3

    def test_builtin_binary(self):
        assert ev("min 3 5") == 3
        assert ev("max 3 5") == 5

    def test_redomap(self):
        e = parse_exp("redomap (+) (\\x y -> x * y) 0.0 xs ys")
        out = EV.eval1(
            e,
            {
                "xs": np.asarray([1, 2], np.float32),
                "ys": np.asarray([3, 4], np.float32),
            },
        )
        assert out == 11

    def test_scanomap(self):
        e = parse_exp("scanomap (+) (\\x -> x * 2) 0 xs")
        out = EV.eval1(e, {"xs": np.asarray([1, 2, 3], np.int64)})
        assert np.array_equal(out, [2, 6, 12])

    def test_multi_ne_tuple(self):
        e = parse_exp("reduce (\\a b c d -> (a + c, b * d)) (0.0, 1.0) xs ys")
        outs = EV.eval(
            e,
            {
                "xs": np.asarray([1, 2], np.float32),
                "ys": np.asarray([3, 4], np.float32),
            },
        )
        assert (outs[0], outs[1]) == (3, 12)

    def test_replicate_iota_transpose(self):
        assert np.array_equal(ev("replicate 3 7"), [7, 7, 7])
        assert np.array_equal(ev("iota 3"), [0, 1, 2])
        out = ev("transpose m_", m_=np.arange(6).reshape(2, 3))
        assert out.shape == (3, 2)

    def test_rearrange(self):
        out = ev("rearrange (0, 2, 1) a", a=np.arange(24).reshape(2, 3, 4))
        assert out.shape == (2, 4, 3)

    def test_tuple_expression(self):
        outs = EV.eval(parse_exp("(1, 2.5, true)"), {})
        assert len(outs) == 3

    def test_parenthesised_lambda(self):
        e = parse_exp("map ((\\x -> x + 1)) xs")
        out = EV.eval1(e, {"xs": np.asarray([5], np.int64)})
        assert out[0] == 6


class TestPrograms:
    def test_signature_types(self):
        prog = parse_program("def f(xs: [n]f32, k: i64) = k")
        assert prog.params[0][1] == ArrayType((__import__("repro.sizes", fromlist=["SizeVar"]).SizeVar("n"),), F32)
        assert prog.params[1][1] == I64

    def test_constant_dims(self):
        prog = parse_program("def f(xs: [4][n]f32) = xs")
        t = prog.params[0][1]
        assert str(t) == "[4][n]f32"

    def test_no_params(self):
        prog = parse_program("def f() = 1 + 1")
        assert prog.params == []

    def test_multiple_programs(self):
        progs = parse_programs(
            "def f(x: i64) = x\n" "def g(y: f32) = y + 1.0\n"
        )
        assert [p.name for p in progs] == ["f", "g"]

    def test_matmul_agrees_with_builder(self):
        src = """
        def matmul(xss: [n][m]f32, yss: [m][n]f32) =
          map (\\xs -> map (\\ys -> redomap (+) (\\x y -> x * y) 0.0 xs ys)
                          (transpose yss))
              xss
        """
        prog = parse_program(src)
        rng = np.random.default_rng(0)
        A = rng.standard_normal((3, 5)).astype(np.float32)
        B = rng.standard_normal((5, 3)).astype(np.float32)
        (out,) = run_program(prog, {"xss": A, "yss": B})
        assert np.allclose(out, A @ B, rtol=1e-5)

    def test_parsed_program_compiles(self):
        from repro.compiler import compile_program

        src = """
        def sumsq(xss: [n][m]f32) =
          map (\\row -> redomap (+) (\\x -> x * x) 0.0 row) xss
        """
        cp = compile_program(parse_program(src), "incremental")
        assert len(cp.registry) == 2


class TestErrors:
    @pytest.mark.parametrize(
        "src",
        [
            "let a = in b",
            "if x then y",
            "map xs",
            "reduce (+) xs",  # missing array after the neutral element
            "loop a = 0 for i do a",
            "(1, 2",
            "xs[",
            "def f(x) = x",
            "def f(x: foo32) = x",
            "1 +",
        ],
    )
    def test_rejects(self, src):
        with pytest.raises(ParseError):
            if src.startswith("def"):
                parse_program(src)
            else:
                parse_exp(src)

    def test_trailing_input(self):
        with pytest.raises(ParseError):
            parse_exp("1 2")


# -- property: pretty-printed scalar arithmetic round-trips --------------------

scalar_exprs = st.recursive(
    st.one_of(
        st.integers(0, 100).map(lambda i: S.Lit(i, I64)),
        st.sampled_from(["x", "y"]).map(S.Var),
    ),
    lambda inner: st.tuples(
        st.sampled_from(["+", "-", "*"]), inner, inner
    ).map(lambda t: S.BinOp(t[0], t[1], t[2])),
    max_leaves=10,
)


@settings(max_examples=60)
@given(scalar_exprs)
def test_pretty_parse_roundtrip(e):
    """Parsing the pretty-printed form evaluates to the same value."""
    from repro.ir.pretty import pretty

    env = {"x": np.int64(3), "y": np.int64(7)}
    reparsed = parse_exp(pretty(e))
    assert EV.eval1(reparsed, env) == EV.eval1(e, env)
