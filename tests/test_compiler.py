"""Tests of the top-level compilation pipeline."""

import numpy as np
import pytest

from repro.compiler import compile_program
from repro.gpu import K40, VEGA64
from repro.ir import source as S
from repro.ir.builder import Program, f32, map_, op2, redomap_, v
from repro.ir.types import F32, array_of
from repro.sizes import SizeVar

from repro.bench.programs.matmul import matmul_program, matmul_sizes


@pytest.fixture(scope="module")
def matmul_if():
    return compile_program(matmul_program(), "incremental")


class TestPipeline:
    def test_modes(self):
        for mode in ("moderate", "incremental", "full"):
            cp = compile_program(matmul_program(), mode)
            assert cp.mode == mode

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            compile_program(matmul_program(), "turbo")

    def test_compile_seconds_recorded(self, matmul_if):
        assert matmul_if.compile_seconds > 0

    def test_thresholds_exposed(self, matmul_if):
        assert matmul_if.thresholds() == ["t0", "t1", "t2", "t3"]

    def test_check_passes(self, matmul_if):
        matmul_if.check()

    def test_fusion_toggle(self):
        n = SizeVar("n")
        prog = Program(
            "p",
            [("xs", array_of(F32, n))],
            S.Let(
                ("ys",),
                map_(lambda x: x * x, v("xs")),
                S.Reduce(op2("+"), [f32(0.0)], (S.Var("ys"),)),
            ),
        )
        fused = compile_program(prog, "moderate", do_fuse=True)
        unfused = compile_program(prog, "moderate", do_fuse=False)
        # with fusion a redomap forms (manifested segred); without, the map
        # and reduce are flattened separately
        assert fused.code_size() != unfused.code_size()

    def test_simplify_toggle(self, matmul_if):
        raw = compile_program(matmul_program(), "incremental", do_simplify=False)
        assert raw.code_size() >= matmul_if.code_size()


class TestCompiledProgram:
    def test_run(self, matmul_if):
        rng = np.random.default_rng(0)
        A = rng.standard_normal((3, 4)).astype(np.float32)
        B = rng.standard_normal((4, 3)).astype(np.float32)
        (out,) = matmul_if.run({"xss": A, "yss": B})
        assert np.allclose(out, A @ B, rtol=1e-5)

    def test_run_with_thresholds(self, matmul_if):
        rng = np.random.default_rng(1)
        A = rng.standard_normal((3, 4)).astype(np.float32)
        B = rng.standard_normal((4, 3)).astype(np.float32)
        (a,) = matmul_if.run({"xss": A, "yss": B}, thresholds={"t0": 1})
        (b,) = matmul_if.run({"xss": A, "yss": B}, thresholds={"t0": 2**30})
        assert np.allclose(a, b)

    def test_simulate_on_both_devices(self, matmul_if):
        s = matmul_sizes(5, 20)
        t1 = matmul_if.simulate(s, K40).time
        t2 = matmul_if.simulate(s, VEGA64).time
        assert t1 > 0 and t2 > 0 and t1 != t2

    def test_simulate_threshold_sensitivity(self, matmul_if):
        s = matmul_sizes(0, 20)  # degenerate: version choice matters a lot
        t_top = matmul_if.simulate(s, K40, thresholds={"t2": 1}).time
        t_flat = matmul_if.simulate(
            s, K40, thresholds={t: 2**30 for t in matmul_if.thresholds()}
        ).time
        assert t_top > 10 * t_flat

    def test_branching_trees_exposed(self, matmul_if):
        assert len(matmul_if.branching_trees()) == 1

    def test_code_size_positive(self, matmul_if):
        assert matmul_if.code_size() > 20


class TestMultiLevel:
    """The formalisation is generic in the number of hardware levels; the
    engine supports more than the GPU's two (paper: 'a solid foundation for
    approaching other types of heterogeneous hardware')."""

    def _deep_prog(self):
        n, m, k = SizeVar("n"), SizeVar("m"), SizeVar("k")
        body = map_(
            lambda mat: map_(
                lambda row: redomap_(op2("+"), lambda x: x * x, f32(0.0), row),
                mat,
            ),
            v("cube"),
        )
        return Program("deep", [("cube", array_of(F32, n, m, k))], body)

    def test_three_level_flattening_validates(self):
        from repro.ir.typecheck import validate_levels

        cp = compile_program(self._deep_prog(), "incremental", num_levels=3)
        validate_levels(cp.body, 2)

    def test_three_levels_more_versions_than_two(self):
        two = compile_program(self._deep_prog(), "incremental", num_levels=2)
        three = compile_program(self._deep_prog(), "incremental", num_levels=3)
        assert len(three.registry) > len(two.registry)
        assert three.code_size() > two.code_size()

    def test_three_level_semantics(self):
        prog = self._deep_prog()
        cp = compile_program(prog, "incremental", num_levels=3)
        rng = np.random.default_rng(2)
        cube = rng.standard_normal((2, 3, 4)).astype(np.float32)
        from repro.interp import run_program

        ref = run_program(prog, {"cube": cube})
        got = run_program(prog, {"cube": cube}, body=cp.body)
        assert np.allclose(ref[0], got[0], rtol=1e-5)

    def test_code_growth_with_depth(self):
        """§3.2: 'the number of generated code versions is exponential in
        the depth of the parallel nest' — but statically bounded."""
        sizes = []
        for levels in (2, 3, 4):
            cp = compile_program(self._deep_prog(), "incremental", num_levels=levels)
            sizes.append(cp.code_size())
        assert sizes[0] < sizes[1] <= sizes[2] * 1.01


class TestTypePreservation:
    """Behavioural analogue of the paper's type-preservation theorem."""

    @pytest.mark.parametrize("mode", ("moderate", "incremental", "full"))
    def test_result_types_preserved(self, mode):
        from repro.ir.typecheck import typeof

        from repro.bench.programs.locvolcalib import locvolcalib_program

        for mk in (matmul_program, locvolcalib_program):
            prog = mk()
            src_ts = typeof(prog.body, prog.type_env())
            cp = compile_program(prog, mode)
            out_ts = typeof(cp.body, prog.type_env())
            assert len(src_ts) == len(out_ts)
            for a, b in zip(src_ts, out_ts):
                assert type(a) is type(b)
                if hasattr(a, "rank"):
                    assert a.rank == b.rank and a.elem == b.elem
