"""Memoization soundness sweep: every bench program, both devices.

The evaluation engine's contract (docs/performance.md) is that caching is
*transparent*: a memoized `simulate` must be bit-identical to a cold,
cache-disabled run — same total time (float addition is non-associative,
so replay order matters), same kernel launch sequence.  This sweep checks
the contract on all Table 1 benchmarks at their paper datasets, plus the
two case-study programs, on both simulated devices.
"""

import pytest

from repro import perf
from repro.bench import BULK_BENCHMARKS
from repro.bench.datasets import table1_sizes
from repro.bench.programs.locvolcalib import locvolcalib_program, locvolcalib_sizes
from repro.bench.programs.matmul import matmul_program, matmul_sizes
from repro.compiler import compile_program
from repro.gpu import K40, VEGA64

DEVICES = {"K40": K40, "VEGA64": VEGA64}


def _cases():
    for name, spec in BULK_BENCHMARKS.items():
        datasets = [table1_sizes(name, d) for d in ("D1", "D2")]
        yield name, spec.program, dict(spec.mf_kwargs), datasets
    yield "matmul", matmul_program, {}, [matmul_sizes(e, 20) for e in (2, 6, 10)]
    yield (
        "locvolcalib",
        locvolcalib_program,
        {},
        [locvolcalib_sizes(n) for n in ("small", "medium", "large")],
    )


def _kernel_seq(report):
    return [
        (k.kind, k.level, k.threads, k.groups, k.group_size, k.time)
        for k in report.kernels
    ]


@pytest.mark.parametrize("case", list(_cases()), ids=lambda c: c[0])
@pytest.mark.parametrize("devname", list(DEVICES))
def test_memoized_simulate_bit_identical(case, devname, monkeypatch):
    name, program, kwargs, datasets = case
    device = DEVICES[devname]
    cp = compile_program(program(), "incremental", **kwargs)
    cfg_default = {t: 2**15 for t in cp.thresholds()}
    cfg_intra = {t: 1 for t in cp.thresholds()}
    for sizes in datasets:
        for cfg in (cfg_default, cfg_intra):
            # cold, with every cache layer disabled
            monkeypatch.setenv("REPRO_NO_CACHE", "1")
            cold = cp.simulate(sizes, device, thresholds=cfg)
            monkeypatch.delenv("REPRO_NO_CACHE")
            # cache-enabled: first (populating) and second (replaying) run
            perf.clear_caches()
            cp._sim_memo.clear()
            warm1 = cp.simulate(sizes, device, thresholds=cfg)
            warm2 = cp.simulate(sizes, device, thresholds=cfg)
            for warm in (warm1, warm2):
                assert warm.time == cold.time, (name, devname, sizes)
                assert warm.host_time == cold.host_time
                assert warm.alloc_bytes == cold.alloc_bytes
                assert warm.transfer_bytes == cold.transfer_bytes
                assert _kernel_seq(warm) == _kernel_seq(cold)
