"""Suite-wide fixtures: always-on IR validation and golden-file updating."""

import pytest

from repro.check import set_validation


@pytest.fixture(autouse=True, scope="session")
def _always_validate():
    """Run the IR validator after every compiler pass for the whole suite.

    This is the tests' equivalent of ``REPRO_VALIDATE=1``: any pass that
    breaks scoping, typing, level nesting, or guard placement fails loudly
    at the pass that introduced the violation.
    """
    set_validation(True)
    yield
    set_validation(None)


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite golden files under tests/goldens/ instead of comparing",
    )


@pytest.fixture
def update_goldens(request):
    return request.config.getoption("--update-goldens")
