"""The textual example programs parse, compile in every mode, and compute
the right values (numpy oracles)."""

import glob
import os

import numpy as np
import pytest

from repro.compiler import compile_program
from repro.interp import run_program
from repro.parser import parse_program

HERE = os.path.dirname(__file__)
PROGRAMS = sorted(
    glob.glob(os.path.join(HERE, "..", "examples", "programs", "*.fut"))
)


def load(name):
    (path,) = [p for p in PROGRAMS if p.endswith(name)]
    with open(path) as fh:
        return parse_program(fh.read())


@pytest.mark.parametrize("path", PROGRAMS, ids=os.path.basename)
def test_parses_and_compiles_all_modes(path):
    with open(path) as fh:
        prog = parse_program(fh.read())
    prog.check()
    for mode in ("moderate", "incremental", "full"):
        compile_program(prog, mode).check()


def test_at_least_four_programs():
    assert len(PROGRAMS) >= 4


class TestSemantics:
    def test_matmul(self):
        prog = load("matmul.fut")
        rng = np.random.default_rng(0)
        A = rng.standard_normal((4, 6)).astype(np.float32)
        B = rng.standard_normal((6, 4)).astype(np.float32)
        (out,) = run_program(prog, {"xss": A, "yss": B})
        assert np.allclose(out, A @ B, rtol=1e-5)

    def test_sumrows(self):
        prog = load("sumrows.fut")
        X = np.arange(12, dtype=np.float32).reshape(3, 4)
        (out,) = run_program(prog, {"xss": X})
        assert np.allclose(out, X.sum(axis=1))

    def test_mps(self):
        prog = load("mss.fut")
        X = np.asarray([[1, -2, 3], [-1, -1, -1]], np.float32)
        (out,) = run_program(prog, {"xss": X})
        assert np.allclose(out, [2.0, 0.0])  # max prefix sum, floor 0

    def test_heat(self):
        prog = load("heat.fut")
        rng = np.random.default_rng(1)
        rows = rng.uniform(0, 1, (2, 5)).astype(np.float32)
        (out,) = run_program(
            prog, {"rows": rows, "steps": 2, "w_": 5}
        )
        ref = rows.copy()
        for _ in range(2):
            nxt = np.empty_like(ref)
            for b in range(2):
                for j in range(5):
                    nxt[b, j] = np.float32(
                        (
                            ref[b, max(j - 1, 0)]
                            + ref[b, j]
                            + ref[b, min(j + 1, 4)]
                        )
                        / np.float32(3.0)
                    )
            ref = nxt
        assert np.allclose(out, ref, rtol=1e-5)

    @pytest.mark.parametrize("name", ["matmul.fut", "sumrows.fut", "mss.fut"])
    def test_incremental_equivalence(self, name):
        prog = load(name)
        cp = compile_program(prog, "incremental")
        rng = np.random.default_rng(2)
        inputs = {}
        from repro.ir.types import ArrayType

        sizes = {"n": 3, "m": 4, "b": 2, "w": 5}
        for pname, t in prog.params:
            if isinstance(t, ArrayType):
                shape = tuple(d.eval(sizes) for d in t.shape)
                inputs[pname] = rng.standard_normal(shape).astype(np.float32)
            else:
                inputs[pname] = 2
        ref = run_program(prog, inputs, sizes=sizes)
        got = run_program(prog, inputs, body=cp.body, sizes=sizes)
        for r, g in zip(ref, got):
            assert np.allclose(r, g, rtol=1e-5)
