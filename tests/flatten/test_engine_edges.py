"""Edge cases of the flattening engine beyond the per-rule tests."""

import numpy as np

from repro.compiler import compile_program
from repro.flatten import Flattener
from repro.interp import run_program
from repro.ir import source as S
from repro.ir import target as T
from repro.ir.builder import (
    Program,
    f32,
    i64,
    if_,
    let_,
    loop_,
    map_,
    op2,
    redomap_,
    reduce_,
    scan_,
    scanomap_,
    v,
)
from repro.ir.traverse import walk
from repro.ir.typecheck import validate_levels
from repro.ir.types import BOOL, F32, array_of
from repro.passes import normalize, simplify
from repro.sizes import SizeVar

N, M, K = SizeVar("n"), SizeVar("m"), SizeVar("k")


def compile_body(e, env, mode="incremental"):
    fl = Flattener(mode)
    out = simplify(fl.flatten(simplify(normalize(e)), env))
    validate_levels(out, 1)
    return out, fl


def find(e, cls):
    return [x for x in walk(e) if isinstance(x, cls)]


def check_equiv(prog, inputs, sizes=None, modes=("moderate", "incremental", "full")):
    ref = run_program(prog, inputs, sizes=sizes)
    for mode in modes:
        cp = compile_program(prog, mode)
        got = run_program(prog, inputs, body=cp.body, sizes=sizes)
        for r, g in zip(ref, got):
            assert np.allclose(r, g, rtol=1e-5), mode
    return ref


class TestScanomapPaths:
    def test_mf_sequentialises_fused_scanomap(self):
        e = map_(
            lambda row: scanomap_(op2("+"), lambda x: x * 2.0, f32(0.0), row),
            v("xss"),
        )
        out, _ = compile_body(e, {"xss": array_of(F32, N, M)}, "moderate")
        assert isinstance(out, T.SegMap)
        assert isinstance(out.body, S.Scanomap)

    def test_if_parallelises_fused_scanomap(self):
        e = map_(
            lambda row: scanomap_(op2("+"), lambda x: x * 2.0, f32(0.0), row),
            v("xss"),
        )
        out, fl = compile_body(e, {"xss": array_of(F32, N, M)}, "incremental")
        # three versions exist; the flat one is a segscan over both dims
        scans = [s for s in find(out, T.SegScan) if len(s.ctx) == 2]
        assert scans

    def test_scanomap_with_inner_parallelism_decomposes(self):
        n3 = {"xsss": array_of(F32, N, M, K)}
        e = map_(
            lambda mat: scanomap_(
                op2("+"),
                lambda row: reduce_(op2("+"), f32(0.0), row),
                f32(0.0),
                mat,
            ),
            v("xsss"),
        )
        out, _ = compile_body(e, n3, "full")
        # decomposed: some segred for the map part, a segscan for the scan
        assert find(out, T.SegRed) and find(out, T.SegScan)

    def test_scanomap_semantics_all_modes(self):
        prog = Program(
            "p",
            [("xss", array_of(F32, N, M))],
            map_(
                lambda row: scanomap_(op2("+"), lambda x: x + 1.0, f32(0.0), row),
                v("xss"),
            ),
        )
        rng = np.random.default_rng(0)
        check_equiv(prog, {"xss": rng.standard_normal((3, 4)).astype(np.float32)})


class TestMultiOutput:
    def test_multi_output_map_through_g3(self):
        prog = Program(
            "p",
            [("xss", array_of(F32, N, M))],
            map_(
                lambda row: (
                    reduce_(op2("+"), f32(0.0), row),
                    reduce_(op2("max"), f32(-1e9), row),
                ),
                v("xss"),
            ),
        )
        rng = np.random.default_rng(1)
        check_equiv(prog, {"xss": rng.standard_normal((4, 3)).astype(np.float32)})

    def test_multi_output_loop_interchange(self):
        prog = Program(
            "p",
            [("xss", array_of(F32, N, M))],
            map_(
                lambda row: loop_(
                    [row, f32(0.0)],
                    i64(3),
                    lambda i, cur, acc: (
                        map_(lambda x: x * 0.5, cur),
                        acc + reduce_(op2("+"), f32(0.0), cur),
                    ),
                ),
                v("xss"),
            ),
        )
        rng = np.random.default_rng(2)
        check_equiv(prog, {"xss": rng.standard_normal((3, 4)).astype(np.float32)})


class TestDeepContexts:
    def test_three_level_distribution(self):
        prog = Program(
            "p",
            [("xsss", array_of(F32, N, M, K))],
            map_(
                lambda mat: map_(
                    lambda row: let_(
                        scan_(op2("+"), f32(0.0), row),
                        lambda bs: scan_(op2("max"), f32(-1e9), bs),
                    ),
                    mat,
                ),
                v("xsss"),
            ),
        )
        rng = np.random.default_rng(3)
        check_equiv(
            prog, {"xsss": rng.standard_normal((2, 3, 4)).astype(np.float32)}
        )
        # the moderate code distributes into two 3-deep segscans
        mf = compile_program(prog, "moderate")
        scans = [s for s in find(mf.body, T.SegScan) if len(s.ctx) == 3]
        assert len(scans) == 2

    def test_nested_loops_interchange_once(self):
        prog = Program(
            "p",
            [("xss", array_of(F32, N, M))],
            map_(
                lambda row: loop_(
                    [row],
                    i64(2),
                    lambda i, cur: loop_(
                        [cur], i64(2), lambda j, c2: map_(lambda x: x + 1.0, c2)
                    ),
                ),
                v("xss"),
            ),
        )
        rng = np.random.default_rng(4)
        check_equiv(prog, {"xss": rng.standard_normal((2, 3)).astype(np.float32)})


class TestTopLevelConstructs:
    def test_if_at_top_level_both_branches_flattened(self):
        prog = Program(
            "p",
            [("xss", array_of(F32, N, M)), ("flag", BOOL)],
            if_(
                v("flag"),
                map_(lambda r: reduce_(op2("+"), f32(0.0), r), v("xss")),
                map_(lambda r: reduce_(op2("max"), f32(-1e9), r), v("xss")),
            ),
        )
        rng = np.random.default_rng(5)
        xss = rng.standard_normal((3, 4)).astype(np.float32)
        for flag in (True, False):
            check_equiv(prog, {"xss": xss, "flag": flag})
        cp = compile_program(prog, "moderate")
        assert isinstance(cp.body, S.If)
        assert find(cp.body.then, T.SegOp) and find(cp.body.els, T.SegOp)

    def test_top_level_loop_without_context(self):
        prog = Program(
            "p",
            [("xs", array_of(F32, N))],
            loop_([v("xs")], i64(3), lambda i, cur: map_(lambda x: x * 2.0, cur)),
        )
        rng = np.random.default_rng(6)
        check_equiv(prog, {"xs": rng.standard_normal(4).astype(np.float32)})
        cp = compile_program(prog, "moderate")
        assert isinstance(cp.body, S.Loop)

    def test_sequenced_parallel_lets_at_top(self):
        prog = Program(
            "p",
            [("xs", array_of(F32, N))],
            let_(
                map_(lambda x: x * 2.0, v("xs")),
                lambda ys: let_(
                    reduce_(op2("+"), f32(0.0), ys),
                    lambda s: map_(lambda y: y + s, ys),
                ),
            ),
        )
        rng = np.random.default_rng(7)
        check_equiv(prog, {"xs": rng.standard_normal(5).astype(np.float32)})


class TestG9Depth:
    def test_g9_inside_g3(self):
        """Heston's structure: map of redomap-of-reduce gets both G3 and G9
        guards; the deepest version parallelises the innermost reduce."""
        prog = Program(
            "p",
            [("xsss", array_of(F32, N, M, K))],
            map_(
                lambda mat: redomap_(
                    op2("+"),
                    lambda row: reduce_(op2("+"), f32(0.0), row),
                    f32(0.0),
                    mat,
                ),
                v("xsss"),
            ),
        )
        cp = compile_program(prog, "incremental")
        kinds = [t.kind for t in cp.registry.items]
        assert "suff_outer_par" in kinds and "suff_intra_par" in kinds
        assert len(cp.registry) >= 3
        rng = np.random.default_rng(8)
        check_equiv(
            prog, {"xsss": rng.standard_normal((2, 3, 4)).astype(np.float32)}
        )

    def test_vector_reduce_without_g4_pattern(self):
        """A reduce over rows with a non-map operator body manifests
        sequentially rather than crashing."""
        op = S.Lambda(
            ("a", "b"),
            S.Map(
                S.Lambda(("x", "y"), S.BinOp("max", S.Var("x"), S.Var("y"))),
                (S.Var("b"), S.Var("a")),  # swapped: not the G4 pattern
            ),
        )
        prog = Program(
            "p",
            [("xss", array_of(F32, N, M))],
            S.Reduce(op, [S.Replicate(S.SizeE("m"), f32(-1e9))], (v("xss"),)),
        )
        rng = np.random.default_rng(9)
        xss = rng.standard_normal((3, 4)).astype(np.float32)
        ref = run_program(prog, {"xss": xss})
        cp = compile_program(prog, "moderate")
        got = run_program(prog, {"xss": xss}, body=cp.body)
        assert np.allclose(ref[0], got[0])


class TestContextArrayExpressions:
    def test_transposed_binding_array(self):
        """matmul's inner map draws from `transpose yss` — a non-variable
        context array — through every mode."""
        prog = Program(
            "p",
            [("yss", array_of(F32, M, N))],
            map_(lambda col: reduce_(op2("+"), f32(0.0), col), S.transpose(v("yss"))),
        )
        rng = np.random.default_rng(10)
        yss = rng.standard_normal((3, 4)).astype(np.float32)
        ref = check_equiv(prog, {"yss": yss})
        assert np.allclose(ref[0], yss.sum(axis=0))
