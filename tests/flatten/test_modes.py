"""Mode-level shape expectations: MF, IF and FF produce the paper's codes."""

from repro.compiler import compile_program
from repro.ir import source as S
from repro.ir import target as T
from repro.ir.traverse import walk

from repro.bench.programs.heston import heston_program
from repro.bench.programs.locvolcalib import locvolcalib_program
from repro.bench.programs.matmul import matmul_program


def find(e, cls):
    return [n for n in walk(e) if isinstance(n, cls)]


class TestMatmul:
    """§2.2: the three matmul versions."""

    def test_moderate_is_version2(self):
        cp = compile_program(matmul_program(), "moderate")
        out = cp.body
        # one segmap over both map dimensions with a sequential redomap
        assert isinstance(out, T.SegMap)
        assert len(out.ctx) == 2
        assert isinstance(out.body, S.Redomap)

    def test_full_is_version1(self):
        cp = compile_program(matmul_program(), "full")
        out = cp.body
        # fully flattened: a level-1 segred over all three dimensions
        assert isinstance(out, T.SegRed)
        assert out.level == 1
        assert len(out.ctx) == 3

    def test_incremental_contains_both(self):
        cp = compile_program(matmul_program(), "incremental")
        segmaps = [
            s for s in find(cp.body, T.SegMap)
            if len(s.ctx) == 2 and isinstance(s.body, S.Redomap)
        ]
        segreds = [s for s in find(cp.body, T.SegRed) if len(s.ctx) == 3]
        assert segmaps, "version (2) missing from the multi-versioned code"
        assert segreds, "version (1) missing from the multi-versioned code"

    def test_incremental_guards(self):
        cp = compile_program(matmul_program(), "incremental")
        guards = find(cp.body, T.ParCmp)
        assert len(guards) == 4  # outer map + inner map, two guards each
        kinds = [t.kind for t in cp.registry.items]
        assert kinds.count("suff_outer_par") == 2
        assert kinds.count("suff_intra_par") == 2


class TestLocVolCalib:
    """§5.2 / Fig. 6c: the three LocVolCalib versions."""

    def test_moderate_is_version3(self):
        cp = compile_program(locvolcalib_program(), "moderate")
        # loop at the top (G7 fired), all scans as level-1 segscans
        assert isinstance(cp.body, S.Loop)
        scans = find(cp.body, T.SegScan)
        assert len(scans) == 6  # three per tridag batch
        assert all(s.level == 1 and len(s.ctx) == 3 for s in scans)

    def test_incremental_has_all_three_versions(self):
        cp = compile_program(locvolcalib_program(), "incremental")
        body = cp.body
        # version 1: segmaps over ⟨xss⟩⟨xs⟩ with sequential scans inside
        v1 = [
            s for s in find(body, T.SegMap)
            if s.level == 1 and any(isinstance(n, S.Scan) for n in walk(s.body))
            and not find(s.body, T.SegOp)
        ]
        # version 2: level-1 segmaps containing level-0 segscans
        v2 = [
            s for s in find(body, T.SegMap)
            if s.level == 1
            and any(x.level == 0 for x in find(s.body, T.SegScan))
        ]
        # version 3: level-1 segscans with 3-deep contexts
        v3 = [
            s for s in find(body, T.SegScan)
            if s.level == 1 and len(s.ctx) == 3
        ]
        assert v1 and v2 and v3

    def test_outermost_guard_is_nums(self):
        # Fig. 6c: "if numS > t0 then ... else loop ..."
        cp = compile_program(locvolcalib_program(), "incremental")
        assert isinstance(cp.body, S.If)
        assert isinstance(cp.body.cond, T.ParCmp)
        assert cp.body.cond.par.eval({"numS": 7}) == 7

    def test_loop_under_flat_branch(self):
        cp = compile_program(locvolcalib_program(), "incremental")
        els = cp.body.els
        # somewhere down the else chain the interchanged loop appears
        assert any(isinstance(n, S.Loop) for n in walk(els))


class TestHeston:
    """§5.3: map⟨redomap⟨reduce⟩⟩; MF keeps only the outer map."""

    def test_moderate_outer_only(self):
        cp = compile_program(heston_program(), "moderate")
        out = cp.body
        assert isinstance(out, T.SegMap)
        assert len(out.ctx) == 1
        # everything inside is sequential
        assert not find(out.body, T.SegOp)

    def test_full_exploits_all(self):
        cp = compile_program(heston_program(), "full")
        # the innermost reduce is parallelised somewhere
        reds = find(cp.body, T.SegRed)
        assert reds
        assert max(len(r.ctx) for r in reds) >= 2

    def test_incremental_versions(self):
        cp = compile_program(heston_program(), "incremental")
        assert len(cp.registry) >= 3  # G3 at the map, G9 at the redomaps


class TestDeterminism:
    def test_compile_is_deterministic_in_structure(self):
        a = compile_program(matmul_program(), "incremental")
        b = compile_program(matmul_program(), "incremental")
        assert a.code_size() == b.code_size()
        assert a.thresholds() == b.thresholds()
