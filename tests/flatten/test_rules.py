"""Per-rule tests of the flattening engine (paper Figs. 3 and 4)."""

import numpy as np
import pytest

from repro.flatten import Flattener, FlattenError
from repro.interp import Evaluator
from repro.ir import source as S
from repro.ir import target as T
from repro.ir.builder import (
    f32,
    i64,
    if_,
    let_,
    loop_,
    map_,
    op2,
    redomap_,
    reduce_,
    replicate,
    scan_,
    transpose,
    v,
)
from repro.ir.target import EMPTY_CTX
from repro.ir.traverse import walk
from repro.ir.typecheck import validate_levels
from repro.ir.types import F32, array_of
from repro.sizes import SizeVar

N, M, K = SizeVar("n"), SizeVar("m"), SizeVar("k")
ENV = {
    "xs": array_of(F32, N),
    "ys": array_of(F32, N),
    "xss": array_of(F32, N, M),
    "yss": array_of(F32, M, N),
    "zss": array_of(F32, N, M),
    "arr3d": array_of(F32, N, M, K),
}


def flat(e, mode="incremental", env=ENV):
    from repro.passes import normalize, simplify

    fl = Flattener(mode)
    out = simplify(fl.flatten(simplify(normalize(e)), env))
    validate_levels(out, 1)
    return out, fl


def find(out, cls):
    return [n for n in walk(out) if isinstance(n, cls)]


class TestG0G1:
    def test_g0_identity(self):
        e = v("xs")[i64(0)] + 1.0
        out, _ = flat(e)
        assert isinstance(out, S.BinOp)  # unchanged

    def test_g1_manifests_context(self):
        # a map with sequential body manifests the whole nest (G2 really,
        # but a scalar-only body under context exercises the same path)
        e = map_(lambda x: x + 1.0, v("xs"))
        out, _ = flat(e)
        assert isinstance(out, T.SegMap)
        assert len(out.ctx) == 1


class TestG2:
    def test_sequential_body_manifested(self):
        e = map_(lambda row: map_(lambda x: x * 2.0, row), v("xss"))
        out, _ = flat(e, "moderate")
        assert isinstance(out, T.SegMap)
        assert len(out.ctx) == 2  # perfect nest collapsed into one context

    def test_body_with_seq_soac_not_distributed_by_g2(self):
        # map whose body is a *sequentialised* redomap (moderate): G1/G2
        e = map_(
            lambda row: redomap_(op2("+"), lambda x: x * x, f32(0.0), row),
            v("xss"),
        )
        out, _ = flat(e, "moderate")
        assert isinstance(out, T.SegMap)
        assert isinstance(out.body, S.Redomap)


class TestG3:
    def test_three_versions(self):
        e = map_(
            lambda row: redomap_(op2("+"), lambda x: x * x, f32(0.0), row),
            v("xss"),
        )
        out, fl = flat(e, "incremental")
        assert isinstance(out, S.If)
        assert isinstance(out.cond, T.ParCmp)
        assert isinstance(out.els, S.If)
        # e_top: segmap with sequential redomap body
        assert isinstance(out.then, T.SegMap)
        assert isinstance(out.then.body, S.Redomap)
        # e_middle: segmap with level-0 segred inside
        middle = out.els.then
        assert isinstance(middle, T.SegMap)
        assert any(s.level == 0 for s in find(middle.body, T.SegOp))
        # e_flat: the fully flattened segred at level 1
        flat_v = out.els.els
        assert isinstance(flat_v, T.SegRed) and flat_v.level == 1
        # two thresholds allocated (t_top, t_intra)
        assert len(fl.registry) == 2
        kinds = [t.kind for t in fl.registry.items]
        assert kinds == ["suff_outer_par", "suff_intra_par"]

    def test_par_expressions(self):
        e = map_(
            lambda row: redomap_(op2("+"), lambda x: x, f32(0.0), row), v("xss")
        )
        _, fl = flat(e, "incremental")
        t_top, t_intra = fl.registry.items
        assert t_top.par.eval({"n": 4, "m": 8}) == 4
        assert t_intra.par.eval({"n": 4, "m": 8}) == 32

    def test_no_versions_at_level0(self):
        fl = Flattener("incremental")
        e = map_(
            lambda row: redomap_(op2("+"), lambda x: x, f32(0.0), row), v("xss")
        )
        out = fl.flat(EMPTY_CTX, 0, e, dict(ENV))
        assert not isinstance(out, S.If)
        assert len(fl.registry) == 0


class TestG4:
    def test_reduce_of_map_interchanged(self):
        # reduce (map (+)) (replicate m 0) zss ≡ map (reduce (+) 0) (transpose zss)
        vec_op = S.Lambda(
            ("a", "b"),
            S.Map(S.Lambda(("x", "y"), S.Var("x") + S.Var("y")),
                  (S.Var("a"), S.Var("b"))),
        )
        e = S.Reduce(vec_op, [replicate(S.SizeE("m"), f32(0.0))], (v("zss"),))
        out, _ = flat(e, "moderate")
        # becomes a segred over the transposed array (via map-of-reduce)
        assert isinstance(out, T.SegRed)
        rearr = [n for n in walk(out) if isinstance(n, S.Rearrange)]
        assert rearr and rearr[0].perm[0] == 1

    def test_g4_semantics(self):
        vec_op = S.Lambda(
            ("a", "b"),
            S.Map(S.Lambda(("x", "y"), S.Var("x") + S.Var("y")),
                  (S.Var("a"), S.Var("b"))),
        )
        e = S.Reduce(vec_op, [replicate(S.SizeE("m"), f32(0.0))], (v("zss"),))
        out, _ = flat(e, "moderate")
        zss = np.arange(6, dtype=np.float32).reshape(3, 2)
        ev = Evaluator(sizes={"n": 3, "m": 2})
        a = ev.eval1(e, {"zss": zss})
        b = ev.eval1(out, {"zss": zss})
        assert np.array_equal(a, b)
        assert np.array_equal(a, zss.sum(axis=0))


class TestG5:
    def test_rearrange_of_bound_var(self):
        # map (transpose) arr3d ≡ rearrange (0,2,1) arr3d
        e = map_(lambda slice_: transpose(slice_), v("arr3d"))
        out, _ = flat(e, "moderate")
        assert isinstance(out, S.Rearrange)
        assert out.perm == (0, 2, 1)

    def test_g5_semantics(self):
        e = map_(lambda slice_: transpose(slice_), v("arr3d"))
        out, _ = flat(e, "moderate")
        a3 = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        ev = Evaluator()
        assert np.array_equal(
            ev.eval1(e, {"arr3d": a3}), ev.eval1(out, {"arr3d": a3})
        )


class TestG6:
    def test_let_distribution(self):
        e = map_(
            lambda row: let_(
                scan_(op2("+"), f32(0.0), row),
                lambda bs: scan_(op2("max"), f32(-1e9), bs),
            ),
            v("xss"),
        )
        out, _ = flat(e, "moderate")
        scans = find(out, T.SegScan)
        assert len(scans) == 2  # distributed into two segscans
        assert isinstance(out, S.Let)

    def test_irregular_sizes_rejected(self):
        # inner array size depends on the context variable: irregular
        e = map_(
            lambda x: let_(
                S.Iota(S.UnOp("to_i64", x)),
                lambda ys: reduce_(op2("+"), i64(0), ys),
            ),
            v("ks"),
        )
        from repro.ir.typecheck import TypeError_
        from repro.ir.types import I64

        env = dict(ENV, ks=array_of(I64, N))
        with pytest.raises((FlattenError, TypeError_)):
            flat(e, "moderate", env)


class TestG7:
    def test_loop_interchange(self):
        e = map_(
            lambda row: loop_(
                [row], i64(3), lambda i, cur: map_(lambda x: x + 1.0, cur)
            ),
            v("xss"),
        )
        out, _ = flat(e, "moderate")
        assert isinstance(out, S.Loop)  # loop hoisted out of the map
        assert find(out.body, T.SegMap)

    def test_invariant_init_replicated(self):
        e = map_(
            lambda row: loop_(
                [f32(0.0)],
                i64(2),
                lambda i, acc: acc + reduce_(op2("+"), f32(0.0), row),
            ),
            v("xss"),
        )
        out, _ = flat(e, "moderate")
        assert isinstance(out, S.Loop)
        assert any(isinstance(n, S.Replicate) for n in walk(out.inits[0]))

    def test_variant_trip_count_sequentialised(self):
        e = map_(
            lambda row: loop_(
                [f32(0.0)],
                S.UnOp("to_i64", row[i64(0)]),
                lambda i, acc: acc + reduce_(op2("+"), f32(0.0), row),
            ),
            v("xss"),
        )
        out, _ = flat(e, "moderate")
        assert isinstance(out, T.SegMap)  # whole loop kept in-thread

    def test_g7_semantics(self):
        e = map_(
            lambda row: loop_(
                [row], i64(3), lambda i, cur: map_(lambda x: x * 2.0, cur)
            ),
            v("xss"),
        )
        out, _ = flat(e, "moderate")
        xss = np.arange(6, dtype=np.float32).reshape(2, 3)
        ev = Evaluator(sizes={"n": 2, "m": 3})
        assert np.array_equal(ev.eval1(e, {"xss": xss}), ev.eval1(out, {"xss": xss}))


class TestG8:
    def test_if_distributed(self):
        e = map_(
            lambda row: if_(
                v("flag"),
                scan_(op2("+"), f32(0.0), row),
                map_(lambda x: x + 1.0, row),
            ),
            v("xss"),
        )
        env = dict(ENV, flag=__import__("repro.ir.types", fromlist=["BOOL"]).BOOL)
        out, _ = flat(e, "moderate", env)
        assert isinstance(out, S.If)
        assert isinstance(out.cond, S.Var)  # hoisted above the parallelism
        assert find(out.then, T.SegScan)
        assert find(out.els, T.SegMap)

    def test_variant_condition_stays_inside(self):
        e = map_(
            lambda row: if_(
                row[i64(0)].gt(0.0),
                reduce_(op2("+"), f32(0.0), row),
                f32(0.0),
            ),
            v("xss"),
        )
        out, _ = flat(e, "moderate")
        assert isinstance(out, T.SegMap)  # divergent branch kept in-thread

    def test_g8_semantics(self):
        from repro.ir.types import BOOL

        e = map_(
            lambda row: if_(
                v("flag"),
                scan_(op2("+"), f32(0.0), row),
                map_(lambda x: x + 1.0, row),
            ),
            v("xss"),
        )
        env = dict(ENV, flag=BOOL)
        out, _ = flat(e, "moderate", env)
        xss = np.arange(6, dtype=np.float32).reshape(2, 3)
        for flag in (True, False):
            ev = Evaluator(sizes={"n": 2, "m": 3})
            a = ev.eval1(e, {"xss": xss, "flag": flag})
            b = ev.eval1(out, {"xss": xss, "flag": flag})
            assert np.array_equal(a, b)


class TestG9:
    def test_redomap_two_versions(self):
        # a redomap whose map part has inner parallelism
        e = redomap_(
            op2("+"),
            lambda row: reduce_(op2("max"), f32(-1e9), row),
            f32(0.0),
            v("xss"),
        )
        out, fl = flat(e, "incremental")
        assert isinstance(out, S.If)
        assert isinstance(out.then, T.SegRed)  # e_top
        # e_rec decomposes and recursively flattens
        assert find(out.els, (T.SegRed, T.SegMap))

    def test_redomap_no_inner_par_manifests_directly(self):
        # the "not-shown" rule: direct segred manifestation
        e = redomap_(op2("+"), lambda x: x * x, f32(0.0), v("xs"))
        out, fl = flat(e, "incremental")
        assert isinstance(out, T.SegRed)
        assert len(fl.registry) == 0
