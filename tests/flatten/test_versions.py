"""Threshold registry, Par computation, and branching-tree extraction."""

from repro.compiler import compile_program
from repro.flatten import ThresholdRegistry, branching_trees, max_par, render_tree
from repro.flatten.versions import BranchNode
from repro.ir import target as T
from repro.ir.builder import v
from repro.sizes import SizeConst, SizeVar

from repro.bench.programs.locvolcalib import locvolcalib_program
from repro.bench.programs.matmul import matmul_program

N, M = SizeVar("n"), SizeVar("m")


class TestRegistry:
    def test_fresh_names_sequential(self):
        reg = ThresholdRegistry()
        assert reg.fresh("suff_outer_par", N) == "t0"
        assert reg.fresh("suff_intra_par", M) == "t1"
        assert reg.names() == ["t0", "t1"]

    def test_by_name(self):
        reg = ThresholdRegistry()
        reg.fresh("suff_outer_par", N)
        th = reg.by_name("t0")
        assert th.kind == "suff_outer_par" and th.par == N

    def test_custom_prefix(self):
        reg = ThresholdRegistry(prefix="main.suff_")
        assert reg.fresh("suff_outer_par", N).startswith("main.suff_")


class TestMaxPar:
    def _ctx(self, size):
        return T.Ctx([T.Binding(("x",), (v("xs"),), size)])

    def test_sequential_is_one(self):
        assert max_par(v("x") + 1.0) == SizeConst(1)

    def test_single_segop(self):
        e = T.SegMap(1, self._ctx(N), v("x"))
        assert max_par(e) == N

    def test_nested_multiplies(self):
        inner = T.SegMap(0, self._ctx(M), v("x") + 1.0)
        outer = T.SegMap(1, self._ctx(N), inner)
        assert max_par(outer).eval({"n": 3, "m": 5}) == 15

    def test_sequenced_takes_max(self):
        import repro.ir.source as S

        a = T.SegMap(1, self._ctx(N), v("x"))
        b = T.SegMap(1, self._ctx(M), v("x"))
        e = S.Let(("r",), a, S.Let(("s",), b, v("s")))
        assert max_par(e).eval({"n": 3, "m": 7}) == 7


class TestBranchingTree:
    def test_matmul_tree(self):
        cp = compile_program(matmul_program(), "incremental")
        trees = branching_trees(cp.body)
        assert len(trees) == 1
        root = trees[0]
        assert isinstance(root, BranchNode)
        # root guard is the outer map's t_top; the false branch nests deeper
        assert isinstance(root.if_false, list)

    def test_leaf_count_equals_versions(self):
        cp = compile_program(matmul_program(), "incremental")

        def leaves(node):
            out = 0
            for side in (node.if_true, node.if_false):
                if isinstance(side, int):
                    out += 1
                else:
                    out += sum(leaves(n) for n in side)
            return out

        trees = branching_trees(cp.body)
        total = sum(leaves(t) for t in trees)
        assert total == 5  # top, middle, (inner: top, middle, flat)

    def test_locvolcalib_has_multiple_instances(self):
        cp = compile_program(locvolcalib_program(), "incremental")
        trees = branching_trees(cp.body)
        # the two tridag batches are guarded independently (this is what
        # lets AIF pick different versions per batch, §5.2)
        thresholds = set()

        def collect(nodes):
            for n in nodes:
                thresholds.add(n.threshold)
                for side in (n.if_true, n.if_false):
                    if isinstance(side, list):
                        collect(side)

        collect(trees)
        assert len(thresholds) == len(cp.registry) == 8

    def test_render_tree_mentions_guards(self):
        cp = compile_program(matmul_program(), "incremental")
        txt = render_tree(branching_trees(cp.body))
        for name in cp.thresholds():
            assert name in txt
        assert "V0" in txt

    def test_moderate_has_no_tree(self):
        cp = compile_program(matmul_program(), "moderate")
        assert branching_trees(cp.body) == []
