"""Multi-valued (tuple-of-arrays) operations through the whole pipeline.

The paper's language is explicitly tuple-of-arrays (§2's example maps and
reduces over two arrays at once); these tests push multi-accumulator
reductions and multi-result maps through flattening, simulation and codegen.
"""

import numpy as np
import pytest

from repro.codegen import generate_opencl
from repro.compiler import compile_program
from repro.gpu import K40
from repro.interp import run_program
from repro.ir import source as S
from repro.ir.builder import Program, f32, lam, map_, v
from repro.ir.types import F32, array_of
from repro.sizes import SizeVar

N, M = SizeVar("n"), SizeVar("m")


def _paper_example_program():
    """§2's example: a two-array map feeding a two-accumulator reduce."""
    body = S.Let(
        ("zs1", "zs2"),
        map_(lambda x, y: (x * 2.0, y + 3.0), v("xs"), v("ys")),
        S.Reduce(
            lam(lambda x1, x2, y1, y2: (x1 + y1, x2 * y2)),
            [f32(0.0), f32(1.0)],
            (S.Var("zs1"), S.Var("zs2")),
        ),
    )
    return Program(
        "paper2",
        [("xs", array_of(F32, N)), ("ys", array_of(F32, N))],
        body,
    )


def _mean_and_max_program():
    """A two-accumulator redomap per row (single-pass mean & max)."""
    body = map_(
        lambda row: S.Redomap(
            lam(lambda s1, m1, s2, m2: (s1 + s2, S.BinOp("max", m1, m2))),
            lam(lambda x: (x, x)),
            [f32(0.0), f32(-1e30)],
            (row,),
        ),
        v("xss"),
    )
    return Program("meanmax", [("xss", array_of(F32, N, M))], body)


@pytest.fixture(scope="module")
def inputs():
    rng = np.random.default_rng(0)
    return {
        "xs": rng.standard_normal(5).astype(np.float32),
        "ys": rng.uniform(0.5, 2.0, 5).astype(np.float32),
        "xss": rng.standard_normal((3, 4)).astype(np.float32),
    }


class TestPaperExample:
    @pytest.mark.parametrize("mode", ("moderate", "incremental", "full"))
    def test_equivalence(self, inputs, mode):
        prog = _paper_example_program()
        ref = run_program(prog, inputs)
        cp = compile_program(prog, mode)
        got = run_program(prog, inputs, body=cp.body)
        for r, g in zip(ref, got):
            assert np.allclose(r, g, rtol=1e-5)

    def test_values_against_numpy(self, inputs):
        prog = _paper_example_program()
        outs = run_program(prog, inputs)
        xs, ys = inputs["xs"], inputs["ys"]
        assert np.allclose(outs[0], (xs * 2).sum(), rtol=1e-5)
        assert np.allclose(outs[1], np.prod(ys + 3, dtype=np.float32), rtol=1e-4)

    def test_simulates(self):
        prog = _paper_example_program()
        cp = compile_program(prog, "full")
        rep = cp.simulate({"n": 2**18}, K40)
        assert rep.time > 0
        # both input arrays read
        assert rep.total_gbytes >= 2 * 4 * 2**18


class TestMultiAccumulator:
    @pytest.mark.parametrize("mode", ("moderate", "incremental", "full"))
    def test_equivalence(self, inputs, mode):
        prog = _mean_and_max_program()
        ref = run_program(prog, inputs)
        cp = compile_program(prog, mode)
        got = run_program(prog, inputs, body=cp.body)
        for r, g in zip(ref, got):
            assert np.allclose(r, g, rtol=1e-5)

    def test_values(self, inputs):
        prog = _mean_and_max_program()
        outs = run_program(prog, inputs)
        xss = inputs["xss"]
        assert np.allclose(outs[0], xss.sum(axis=1), rtol=1e-5)
        assert np.allclose(outs[1], xss.max(axis=1))

    def test_full_mode_manifests_multivalue_segred(self):
        from repro.ir import target as T
        from repro.ir.traverse import walk

        cp = compile_program(_mean_and_max_program(), "full")
        segreds = [x for x in walk(cp.body) if isinstance(x, T.SegRed)]
        assert segreds and len(segreds[0].nes) == 2

    def test_random_thresholds_agree(self, inputs):
        import random

        prog = _mean_and_max_program()
        cp = compile_program(prog, "incremental")
        ref = run_program(prog, inputs)
        rng = random.Random(0)
        for _ in range(5):
            th = {t: rng.choice([1, 10**9]) for t in cp.thresholds()}
            got = run_program(prog, inputs, body=cp.body, thresholds=th)
            for r, g in zip(ref, got):
                assert np.allclose(r, g, rtol=1e-5)

    def test_codegen_handles_multivalue(self):
        cp = compile_program(_mean_and_max_program(), "incremental")
        code = generate_opencl(cp)
        assert code.num_kernels >= 1
