"""Semantic equivalence of flattening, across all modes and threshold paths.

This is the central correctness property (the paper proves type
preservation; we test behavioural preservation): for every benchmark
program and every flattening mode, the flattened program computes exactly
what the source program computes — and for incremental flattening this must
hold under *every* threshold assignment, since all versions are supposed to
be semantically equivalent (§3.2).
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_program
from repro.interp import run_program
from repro.ir.builder import Program, f32, map_, op2, redomap_, reduce_, scan_, v
from repro.ir.types import F32, array_of
from repro.sizes import SizeVar

from repro.bench.programs.backprop import backprop_inputs, backprop_program
from repro.bench.programs.heston import heston_inputs, heston_program
from repro.bench.programs.lavamd import lavamd_inputs, lavamd_program
from repro.bench.programs.locvolcalib import locvolcalib_inputs, locvolcalib_program
from repro.bench.programs.matmul import matmul_program
from repro.bench.programs.nn import nn_inputs, nn_program
from repro.bench.programs.nw import nw_inputs, nw_program
from repro.bench.programs.optionpricing import (
    optionpricing_inputs,
    optionpricing_program,
)
from repro.bench.programs.pathfinder import pathfinder_inputs, pathfinder_program
from repro.bench.programs.srad import srad_inputs, srad_program

MODES = ("moderate", "incremental", "full")


def _matmul_inputs(sizes, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "xss": rng.standard_normal((sizes["n"], sizes["m"])).astype(np.float32),
        "yss": rng.standard_normal((sizes["m"], sizes["n"])).astype(np.float32),
    }


CASES = {
    "matmul": (matmul_program, _matmul_inputs, dict(n=3, m=4)),
    "locvolcalib": (
        locvolcalib_program,
        locvolcalib_inputs,
        dict(numS=2, numX=3, numY=4, numT=2),
    ),
    "optionpricing": (
        optionpricing_program,
        optionpricing_inputs,
        dict(numMC=5, numDates=2, numUnd=3, numDim=6, numBits=4),
    ),
    "heston": (heston_program, heston_inputs, dict(numCand=3, numQuotes=4, numInt=5)),
    "backprop": (backprop_program, backprop_inputs, dict(numIn=6, numHidden=3)),
    "lavamd": (lavamd_program, lavamd_inputs, dict(numBoxes=3, perBox=4, numNbr=2)),
    "nn": (nn_program, nn_inputs, dict(numB=3, numP=5)),
    "srad": (srad_program, srad_inputs, dict(numB=2, H=4, W=3, numIter=2)),
    "pathfinder": (pathfinder_program, pathfinder_inputs, dict(numB=2, rows=4, cols=5)),
    "nw": (nw_program, nw_inputs, dict(nb=3, B=4, numWaves=3)),
}


@pytest.fixture(scope="module")
def compiled():
    """Compile every case in every mode once."""
    out = {}
    for name, (mk, _, _) in CASES.items():
        prog = mk()
        out[name] = {mode: compile_program(prog, mode) for mode in MODES}
        out[name]["prog"] = prog
    return out


def _run(prog, inputs, sizes, body=None, thresholds=None):
    return run_program(prog, inputs, body=body, sizes=sizes, thresholds=thresholds)


@pytest.mark.parametrize("name", list(CASES))
@pytest.mark.parametrize("mode", MODES)
def test_mode_equivalence(compiled, name, mode):
    _, mk_inputs, sizes = CASES[name]
    prog = compiled[name]["prog"]
    inputs = mk_inputs(sizes)
    ref = _run(prog, inputs, sizes)
    cp = compiled[name][mode]
    got = _run(prog, inputs, sizes, body=cp.body)
    for r, g in zip(ref, got):
        assert np.allclose(r, g, rtol=1e-5), f"{name}/{mode} diverged"


@pytest.mark.parametrize("name", list(CASES))
def test_all_threshold_paths_equivalent(compiled, name):
    """Every version combination computes the same result (paper §3.2)."""
    _, mk_inputs, sizes = CASES[name]
    prog = compiled[name]["prog"]
    cp = compiled[name]["incremental"]
    inputs = mk_inputs(sizes)
    ref = _run(prog, inputs, sizes)
    rng = random.Random(42)
    names = cp.thresholds()
    trials = min(10, max(4, 2 * len(names)))
    for _ in range(trials):
        th = {t: rng.choice([1, 7, 10**9]) for t in names}
        got = _run(prog, inputs, sizes, body=cp.body, thresholds=th)
        for r, g in zip(ref, got):
            assert np.allclose(r, g, rtol=1e-5), f"{name} diverged under {th}"


@pytest.mark.parametrize("name", list(CASES))
def test_flattened_programs_validate(compiled, name):
    for mode in MODES:
        compiled[name][mode].check()


@pytest.mark.parametrize("name", list(CASES))
def test_if_code_larger_than_mf(compiled, name):
    """Multi-versioning expands code (paper §5.1: ~3×), never shrinks it."""
    mf = compiled[name]["moderate"].code_size()
    if_ = compiled[name]["incremental"].code_size()
    n_thresholds = len(compiled[name]["incremental"].registry)
    if n_thresholds:
        assert if_ > mf
    else:
        assert if_ >= mf * 0.5


# -- randomly generated map/reduce/scan nests ----------------------------------


@st.composite
def random_nest_program(draw):
    """A random rank-2 nested-parallel program over one matrix input."""
    n, m = SizeVar("n"), SizeVar("m")

    inner_kind = draw(st.sampled_from(["redomap", "scan", "map", "reduce"]))
    op_name = draw(st.sampled_from(["+", "max"]))
    ne = f32(0.0) if op_name == "+" else f32(-1e9)
    scale = draw(st.floats(min_value=0.5, max_value=2.0, allow_nan=False))

    def inner(row):
        if inner_kind == "redomap":
            return redomap_(op2(op_name), lambda x: x * scale, [ne], row)
        if inner_kind == "scan":
            return scan_(op2(op_name), [ne], row)
        if inner_kind == "reduce":
            return reduce_(op2(op_name), [ne], row)
        return map_(lambda x: x * scale + 1.0, row)

    body = map_(lambda row: inner(row), v("xss"))
    wrap_reduce = draw(st.booleans())
    if wrap_reduce and inner_kind in ("map", "scan"):
        from repro.ir.builder import let_

        body = let_(
            body,
            lambda yss: map_(
                lambda ys: reduce_(op2("+"), f32(0.0), ys), yss
            ),
        )
    prog = Program("rand", [("xss", array_of(F32, n, m))], body)
    return prog


@settings(max_examples=25, deadline=None)
@given(
    random_nest_program(),
    st.integers(1, 4),
    st.integers(1, 4),
    st.integers(0, 2**31),
)
def test_random_nest_equivalence(prog, n, m, seed):
    rng = np.random.default_rng(seed)
    inputs = {"xss": rng.uniform(-3, 3, (n, m)).astype(np.float32)}
    ref = run_program(prog, inputs)
    for mode in MODES:
        cp = compile_program(prog, mode)
        got = run_program(prog, inputs, body=cp.body)
        for r, g in zip(ref, got):
            assert np.allclose(r, g, rtol=1e-4)
    # incremental: random thresholds too
    cp = compile_program(prog, "incremental")
    rnd = random.Random(seed)
    for _ in range(3):
        th = {t: rnd.choice([1, 10**9]) for t in cp.thresholds()}
        got = run_program(prog, inputs, body=cp.body, thresholds=th)
        for r, g in zip(ref, got):
            assert np.allclose(r, g, rtol=1e-4)
