"""Golden-file tests for the pseudo-OpenCL code generator.

The goldens pin the exact generated source for matmul and LocVolCalib under
incremental flattening, so any codegen or pipeline change that alters the
emitted kernels shows up as a readable diff.  After an intentional change,
regenerate with::

    PYTHONPATH=src python -m pytest tests/test_codegen_goldens.py --update-goldens
"""

from pathlib import Path

import pytest

from repro.bench.programs.locvolcalib import locvolcalib_program
from repro.bench.programs.matmul import matmul_program
from repro.codegen import generate_opencl
from repro.compiler import compile_program
from repro.ir.traverse import reset_fresh_names

GOLDEN_DIR = Path(__file__).parent / "goldens"

PROGRAMS = {
    "matmul": matmul_program,
    "locvolcalib": locvolcalib_program,
}


def _generate(name: str) -> str:
    # the fresh-name counter is global state: reset it so the generated
    # source is identical no matter which tests ran before this one
    reset_fresh_names()
    cp = compile_program(PROGRAMS[name](), "incremental")
    return generate_opencl(cp).full_source() + "\n"


@pytest.mark.parametrize("name", list(PROGRAMS))
def test_opencl_golden(name, update_goldens):
    path = GOLDEN_DIR / f"{name}_incremental.cl"
    got = _generate(name)
    if update_goldens:
        path.write_text(got)
        pytest.skip(f"updated {path}")
    assert path.exists(), (
        f"missing golden {path}; run pytest with --update-goldens to create it"
    )
    want = path.read_text()
    assert got == want, (
        f"generated OpenCL for {name} differs from {path}; if the change is "
        f"intentional, regenerate with --update-goldens"
    )


def test_goldens_are_deterministic():
    assert _generate("matmul") == _generate("matmul")
