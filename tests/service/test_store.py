"""Artifact store: integrity degradation and LRU bounds.

Mirrors ``tests/exec/test_codegen_cache.py`` for the service layer: a
torn or truncated artifact degrades to a miss (the job re-runs, never a
crash), a poisoned entry — copied under the wrong key or edited without
its checksum — is rejected with ``service.cache.bad``, and the directory
is mtime-LRU bounded.
"""

import json
import os
import shutil
import time

import pytest

from repro import perf
from repro.service.store import ArtifactStore, job_key


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"), max_entries=64)


def _put(store, fp, payload=None):
    key = job_key(fp)
    assert store.store(key, fp, payload or {"kind": "tune", "fp": fp})
    return key


def _counter(name):
    return perf.counters().get(name, 0)


class TestEntryIntegrity:
    def test_round_trip(self, store):
        payload = {"kind": "tune", "thresholds": {"t0": 32}}
        key = job_key("fp-A")
        assert store.store(key, "fp-A", payload)
        assert store.load(key, "fp-A") == payload

    def test_miss_on_absent_key(self, store):
        before = _counter("service.cache.miss")
        assert store.load(job_key("never-stored"), "never-stored") is None
        assert _counter("service.cache.miss") == before + 1

    def test_hit_counts(self, store):
        key = _put(store, "fp-A")
        before = _counter("service.cache.hit")
        assert store.load(key, "fp-A") is not None
        assert _counter("service.cache.hit") == before + 1

    def test_torn_entry_degrades_to_miss(self, store):
        key = _put(store, "fp-A")
        path = os.path.join(store.directory, key + ".json")
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])  # torn write
        bad = _counter("service.cache.bad")
        miss = _counter("service.cache.miss")
        assert store.load(key, "fp-A") is None
        assert _counter("service.cache.bad") == bad + 1
        assert _counter("service.cache.miss") == miss + 1

    def test_entry_copied_under_wrong_key_rejected(self, store):
        # poisoning: a valid entry copied to another job's key must not
        # serve that other job's artifact
        key_a = _put(store, "fp-A")
        key_b = job_key("fp-B")
        shutil.copy(
            os.path.join(store.directory, key_a + ".json"),
            os.path.join(store.directory, key_b + ".json"),
        )
        bad = _counter("service.cache.bad")
        assert store.load(key_b, "fp-B") is None
        assert _counter("service.cache.bad") == bad + 1

    def test_tampered_payload_rejected(self, store):
        key = _put(store, "fp-A", {"kind": "tune", "thresholds": {"t0": 32}})
        path = os.path.join(store.directory, key + ".json")
        doc = json.load(open(path))
        doc["payload"]["thresholds"]["t0"] = 9999  # edit without checksum
        with open(path, "w") as fh:
            json.dump(doc, fh)
        bad = _counter("service.cache.bad")
        assert store.load(key, "fp-A") is None
        assert _counter("service.cache.bad") == bad + 1

    def test_no_cache_env_disables_store(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert not store.store(job_key("fp-A"), "fp-A", {"x": 1})
        monkeypatch.delenv("REPRO_NO_CACHE")
        key = _put(store, "fp-B")
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert store.load(key, "fp-B") is None


class TestLRUBound:
    def test_eviction_beyond_cap(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "s"), max_entries=3)
        keys = []
        for i in range(5):
            keys.append(_put(store, f"fp-{i}"))
            time.sleep(0.01)  # distinct mtimes
        assert len(store) == 3
        # oldest two are gone, newest three survive
        assert store.load(keys[0], "fp-0") is None
        assert store.load(keys[4], "fp-4") is not None

    def test_reads_refresh_lru(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "s"), max_entries=2)
        k0 = _put(store, "fp-0")
        time.sleep(0.01)
        _put(store, "fp-1")
        time.sleep(0.01)
        assert store.load(k0, "fp-0") is not None  # touch: now newest
        time.sleep(0.01)
        _put(store, "fp-2")  # evicts fp-1, not the freshly-read fp-0
        assert store.load(k0, "fp-0") is not None

    def test_env_cap(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_STORE_MAX", "2")
        store = ArtifactStore(str(tmp_path / "s"))
        assert store.max_entries == 2

    def test_clear(self, store):
        _put(store, "fp-A")
        _put(store, "fp-B")
        store.clear()
        assert len(store) == 0
