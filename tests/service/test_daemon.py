"""Service daemon end-to-end: jobs, caching, cancellation, recovery, chaos.

Most tests drive a real daemon in-process over a Unix socket through
:class:`ServiceClient` — the full wire path minus process isolation.  The
chaos test at the end uses subprocesses: a fault plan ``kill -9``'s the
daemon mid-job (exit 137), a restart recovers the spool and resumes the
job from its checkpoint, and the artifact must be byte-identical to a
fault-free daemon's.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

import pytest

from repro import perf
from repro.service import ServiceClient, ServiceDaemon, ServiceError

TUNE = {"kind": "tune", "program": "matmul", "datasets": [{"n": 16, "m": 16}],
        "proposals": 40, "batch_size": 4}


@pytest.fixture
def tmp():
    # unix socket paths are length-limited (~108 bytes); pytest's tmp_path
    # can exceed that, so use a short-lived short directory instead
    d = tempfile.mkdtemp(prefix="repro-svc-")
    yield d
    shutil.rmtree(d, ignore_errors=True)


def start(tmp, name="spool", runners=2, **kw):
    daemon = ServiceDaemon(
        os.path.join(tmp, name),
        socket_path=os.path.join(tmp, name + ".sock"),
        runners=runners,
        **kw,
    )
    daemon.start()
    return daemon, ServiceClient(socket_path=daemon.socket_path)


class TestJobs:
    def test_tune_job_round_trip(self, tmp):
        daemon, client = start(tmp)
        try:
            reply = client.submit(TUNE, tenant="t1")
            assert reply["ok"] and reply["state"] == "queued"
            res = client.result(reply["job"], wait=30)
            assert res["state"] == "done" and not res["cached"]
            art = res["artifact"]
            assert art["kind"] == "tune"
            assert art["thresholds"]["program"] == "matmul"
            assert set(art["thresholds"]["thresholds"]) == {"t0", "t1", "t2", "t3"}
            assert art["telemetry"]["proposals"] == 40
        finally:
            daemon.stop()

    def test_duplicate_is_cache_hit_with_zero_evaluations(self, tmp):
        daemon, client = start(tmp)
        try:
            first = client.submit(TUNE, tenant="t1")
            res1 = client.result(first["job"], wait=30)
            hits = perf.counters().get("service.cache.hit", 0)
            # same job, different tenant and different worker count: the
            # fingerprint ignores result-neutral knobs, so still a hit
            dup = dict(TUNE, workers=2)
            second = client.submit(dup, tenant="t2")
            res2 = client.result(second["job"], wait=30)
            assert res2["cached"]
            assert res2["artifact"] == res1["artifact"]
            done = [e for e in client.events(second["job"])
                    if e["event"] == "done"][0]
            assert done["proposals_evaluated"] == 0
            # at least the duplicate's execute-path load hit (result
            # fetches re-read through the store and hit as well)
            assert perf.counters().get("service.cache.hit", 0) >= hits + 1
            assert client.ping()["counters"]["service.cache.hit"] >= hits + 1
        finally:
            daemon.stop()

    def test_run_and_compile_jobs(self, tmp):
        daemon, client = start(tmp)
        try:
            run_job = {"kind": "run", "program": "matmul",
                       "sizes": {"n": 4, "m": 8}, "engine": "scalar"}
            res = client.result(client.submit(run_job)["job"], wait=30)
            assert res["state"] == "done"
            assert res["artifact"]["kind"] == "run"
            assert len(res["artifact"]["outputs"]) == 1
            assert res["artifact"]["outputs"][0]["sha256"]

            comp = {"kind": "compile", "program": "matmul"}
            res = client.result(client.submit(comp)["job"], wait=30)
            assert res["artifact"]["kind"] == "compile"
            assert res["artifact"]["num_kernels"] > 0
            assert res["artifact"]["source_sha256"]
        finally:
            daemon.stop()

    def test_online_jobs_observe_and_resume_across_restart(self, tmp):
        """Identical online submissions are never cache hits — each one is
        a live observation refining the shared shape-class table — and a
        daemon restart resumes the table from ``<spool>/online/``."""
        job = {"kind": "online", "program": "matmul",
               "sizes": {"n": 4, "m": 8}, "engine": "scalar"}
        daemon, client = start(tmp)
        try:
            arts = []
            for _ in range(3):
                res = client.result(client.submit(job)["job"], wait=30)
                assert res["state"] == "done" and not res["cached"]
                arts.append(res["artifact"])
            assert arts[0]["kind"] == "online"
            assert [a["observations"] for a in arts] == [1, 2, 3]
            assert arts[0]["explored"] and arts[0]["thresholds"] == {}
            # the executed outputs are bit-identical to a plain run job
            # forced down the same decided path
            explicit = dict(job, kind="run", thresholds=arts[-1]["thresholds"])
            res = client.result(client.submit(explicit)["job"], wait=30)
            assert res["artifact"]["outputs"] == arts[-1]["outputs"]
        finally:
            daemon.stop()
        daemon2, client2 = start(tmp)  # same spool: warm resume
        try:
            res = client2.result(client2.submit(job)["job"], wait=30)
            assert res["artifact"]["observations"] == 4
        finally:
            daemon2.stop()

    def test_event_stream_parses_in_sequence_order(self, tmp):
        daemon, client = start(tmp)
        try:
            events = list(client.submit_stream(TUNE))
            assert events[0]["ok"]  # admission reply first
            evs = events[1:]
            assert [e["seq"] for e in evs] == list(range(len(evs)))
            names = [e["event"] for e in evs]
            assert names[0] == "queued" and names[-1] == "done"
            assert "progress" in names
            prog = [e for e in evs if e["event"] == "progress"]
            assert all(e["total"] == 40 for e in prog)
            assert prog[-1]["proposals"] == 40
        finally:
            daemon.stop()

    def test_bad_spec_rejected_with_400(self, tmp):
        daemon, client = start(tmp)
        try:
            with pytest.raises(ServiceError) as exc:
                client.submit({"kind": "tune", "program": "matmul"})
            assert exc.value.code == 400  # tune without datasets
            with pytest.raises(ServiceError) as exc:
                client.submit(TUNE, priority="urgent")
            assert exc.value.code == 400  # unknown priority lane
        finally:
            daemon.stop()

    def test_unknown_program_fails_the_job(self, tmp):
        daemon, client = start(tmp)
        try:
            reply = client.submit(dict(TUNE, program="no-such-program"))
            res = client.result(reply["job"], wait=30)
            assert res["state"] == "failed"
            assert "no-such-program" in res["error"]
        finally:
            daemon.stop()


class TestAdmissionControl:
    def test_429_over_the_wire(self, tmp):
        # runners=0: nothing drains, so the bound is hit deterministically
        daemon, client = start(tmp, runners=0, max_depth=2, retry_after_s=3.5)
        try:
            client.submit(TUNE)
            client.submit(dict(TUNE, seed=1))
            with pytest.raises(ServiceError) as exc:
                client.submit(dict(TUNE, seed=2))
            assert exc.value.code == 429
            assert exc.value.retry_after_s == 3.5
            # the rejected job left no trace
            assert len(client.jobs()) == 2
        finally:
            daemon.stop()

    def test_rejected_submission_counts(self, tmp):
        daemon, client = start(tmp, runners=0, max_depth=1)
        try:
            before = perf.counters().get("service.jobs.rejected", 0)
            client.submit(TUNE)
            with pytest.raises(ServiceError):
                client.submit(dict(TUNE, seed=1))
            assert perf.counters().get("service.jobs.rejected", 0) == before + 1
        finally:
            daemon.stop()


class TestCancellation:
    def test_cancel_queued_job(self, tmp):
        daemon, client = start(tmp, runners=0)
        try:
            job_id = client.submit(TUNE)["job"]
            reply = client.cancel(job_id)
            assert reply["state"] == "canceled"
            assert client.status(job_id)["state"] == "canceled"
        finally:
            daemon.stop()

    def test_cancel_running_job_interrupts_at_batch_boundary(self, tmp):
        daemon, client = start(tmp, runners=1)
        try:
            big = dict(TUNE, proposals=200_000, batch_size=1)
            job_id = client.submit(big)["job"]
            # wait until it is actually running
            deadline = time.time() + 15
            while time.time() < deadline:
                if client.status(job_id)["state"] == "running":
                    break
                time.sleep(0.02)
            reply = client.cancel(job_id)
            assert reply.get("cancel_requested") or reply["state"] == "canceled"
            res = client.result(job_id, wait=30)
            assert res["state"] == "canceled"
            # the interrupted search's measurements survive as a checkpoint
            assert os.path.exists(daemon.spool.ckpt_path(job_id))
        finally:
            daemon.stop()


class TestRecovery:
    def test_restart_recovers_queued_jobs(self, tmp):
        daemon, client = start(tmp, runners=0)
        job_id = client.submit(TUNE)["job"]
        daemon.stop()
        # a new daemon on the same spool re-enqueues and completes it
        daemon2, client2 = start(tmp, runners=2)
        try:
            res = client2.result(job_id, wait=30)
            assert res["state"] == "done"
            evs = [e["event"] for e in client2.events(job_id)]
            assert "requeued" in evs
            # fresh ids continue past recovered ones
            assert client2.submit(dict(TUNE, seed=7))["job"] != job_id
        finally:
            daemon2.stop()

    def test_restart_preserves_terminal_jobs(self, tmp):
        daemon, client = start(tmp)
        job_id = client.submit(TUNE)["job"]
        client.result(job_id, wait=30)
        daemon.stop()
        daemon2, client2 = start(tmp)
        try:
            res = client2.result(job_id, wait=5)
            assert res["state"] == "done"
            assert res["artifact"]["kind"] == "tune"
        finally:
            daemon2.stop()


class TestChaosBitIdentity:
    """worker_crash + daemon kill -9 + restart == fault-free, byte for byte."""

    SUBMIT = ["submit", "matmul", "--dataset", "n=64,m=256",
              "--dataset", "n=4,m=65536", "--proposals", "60",
              "--batch-size", "4", "--workers", "2"]

    @staticmethod
    def _serve(spool, sock, logf, faults=None):
        cmd = [sys.executable, "-m", "repro", "serve",
               "--socket", sock, "--spool", spool]
        if faults:
            cmd += ["--faults", faults]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        proc = subprocess.Popen(cmd, env=env, stdout=open(logf, "a"),
                                stderr=subprocess.STDOUT)
        client = ServiceClient(socket_path=sock, timeout=5)
        deadline = time.time() + 30
        while time.time() < deadline:
            try:
                client.ping()
                return proc, client, env
            except (ServiceError, OSError):
                if proc.poll() is not None:
                    raise AssertionError(open(logf).read())
                time.sleep(0.1)
        proc.kill()
        raise AssertionError("daemon did not come up:\n" + open(logf).read())

    def _cli(self, env, *argv):
        out = subprocess.run([sys.executable, "-m", "repro", *argv],
                             env=env, capture_output=True, text=True)
        assert out.returncode == 0, out.stdout + out.stderr
        return out

    def test_killed_daemon_resumes_bit_identically(self, tmp):
        base_sock = os.path.join(tmp, "base.sock")
        proc, _c, env = self._serve(os.path.join(tmp, "base-spool"),
                                    base_sock, os.path.join(tmp, "base.log"))
        self._cli(env, *self.SUBMIT, "--socket", base_sock, "--wait", "120")
        self._cli(env, "fetch", "j1", "--socket", base_sock,
                  "--output", os.path.join(tmp, "base.json"))
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0  # clean drain

        plan = json.dumps({"rules": [
            {"site": "worker.eval", "kind": "worker_crash",
             "p": 0.5, "max_fires": 1},
            {"site": "tuner.batch", "kind": "process_kill", "at": [6]},
        ]})
        chaos_sock = os.path.join(tmp, "chaos.sock")
        chaos_spool = os.path.join(tmp, "chaos-spool")
        chaos_log = os.path.join(tmp, "chaos.log")
        proc, _c, env = self._serve(chaos_spool, chaos_sock, chaos_log,
                                    faults=plan)
        self._cli(env, *self.SUBMIT, "--socket", chaos_sock)
        assert proc.wait(timeout=120) == 137  # the injected kill fired

        proc, _c, env = self._serve(chaos_spool, chaos_sock, chaos_log)
        self._cli(env, "fetch", "j1", "--socket", chaos_sock,
                  "--output", os.path.join(tmp, "chaos.json"))
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
        assert "recovered job j1" in open(chaos_log).read()

        base = open(os.path.join(tmp, "base.json")).read()
        chaos = open(os.path.join(tmp, "chaos.json")).read()
        assert base == chaos
