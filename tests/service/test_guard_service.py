"""Service health, load shedding, and guard-breaker durability.

In-process daemons cover the ``health`` wire op, the overload-shedding
admission path (503 + engine demotion), and the drain-path breaker
flush.  The subprocess test at the end is the acceptance scenario: a
daemon whose native/codegen launches fail persistently completes jobs
bit-identically via demotion, ``repro health`` reports the tripped
breaker, and the state survives ``kill -9`` + restart.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

import pytest

from repro.exec import compile_cache, guard
from repro.exec.codegen import _CODE_CACHE
from repro.service import ServiceClient, ServiceDaemon, ServiceError

RUN = {"kind": "run", "program": "matmul", "sizes": {"n": 4, "m": 4},
       "engine": "codegen", "seed": 0}


@pytest.fixture
def tmp():
    d = tempfile.mkdtemp(prefix="repro-svc-")
    yield d
    shutil.rmtree(d, ignore_errors=True)


@pytest.fixture(autouse=True)
def _isolated_guard(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "kcache"))
    _CODE_CACHE.clear()
    guard.reset()
    yield
    guard.reset()


def start(tmp, name="spool", runners=2, **kw):
    daemon = ServiceDaemon(
        os.path.join(tmp, name),
        socket_path=os.path.join(tmp, name + ".sock"),
        runners=runners,
        **kw,
    )
    daemon.start()
    return daemon, ServiceClient(socket_path=daemon.socket_path)


class TestHealthOp:
    def test_health_document_shape(self, tmp):
        daemon, client = start(tmp, shed_watermark_s=5.0)
        try:
            doc = client.health()
            assert doc["ok"]
            assert "wait_ewma_s" in doc["queue"]
            assert doc["admission"]["watermark_s"] == 5.0
            assert doc["admission"]["shedding"] is False
            assert doc["admission"]["max_depth"] == daemon.queue.max_depth
            g = doc["guard"]
            assert g["active"] is True
            assert g["breakers"] == [] and g["demotions"] == 0
            assert isinstance(doc["counters"], dict)
        finally:
            daemon.stop()

    def test_health_reports_tripped_breaker(self, tmp, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD_TRIP", "1")

        def boom(env, n):
            raise RuntimeError("bad tier")

        launch = guard.wrap_kernel(
            "svc-key", [("codegen", boom), ("scalar", lambda env, n: (1.0,))]
        )
        launch({}, 1)
        daemon, client = start(tmp)
        try:
            g = client.health()["guard"]
            assert g["demotions"] >= 1
            (br,) = g["breakers"]
            assert br["key"] == "svc-key" and br["state"] == "open"
            assert g["counters"].get("exec.guard.tripped", 0) >= 1
        finally:
            daemon.stop()


class TestShedding:
    def test_normal_priority_shed_with_503(self, tmp):
        daemon, client = start(tmp, runners=0, shed_watermark_s=0.5,
                               retry_after_s=2.0)
        try:
            daemon.queue.wait_ewma = lambda: 10.0  # sustained overload
            with pytest.raises(ServiceError) as ei:
                client.submit(RUN, tenant="t1", priority="normal")
            assert ei.value.code == 503
            assert ei.value.retry_after_s == 2.0
            assert "overloaded" in str(ei.value)
            assert client.health()["admission"]["shedding"] is True
        finally:
            daemon.stop()

    def test_high_priority_admitted_with_engine_demoted(self, tmp):
        daemon, client = start(tmp, runners=0, shed_watermark_s=0.5)
        try:
            daemon.queue.wait_ewma = lambda: 10.0
            reply = client.submit(RUN, tenant="t1", priority="high")
            assert reply["ok"] and reply["state"] == "queued"
            assert reply["engine_demoted"] is True
            assert reply["engine"] == "vector"  # codegen demoted one tier
        finally:
            daemon.stop()

    def test_recovery_hysteresis(self, tmp):
        daemon, client = start(tmp, runners=0, shed_watermark_s=1.0)
        try:
            wait = {"v": 10.0}
            daemon.queue.wait_ewma = lambda: wait["v"]
            assert daemon._shedding() is True
            wait["v"] = 0.8  # below watermark but above half of it
            assert daemon._shedding() is True  # still shedding
            wait["v"] = 0.4  # below half: recovered
            assert daemon._shedding() is False
            reply = client.submit(RUN, tenant="t1", priority="normal")
            assert reply["ok"] and "engine_demoted" not in reply
        finally:
            daemon.stop()

    def test_watermark_zero_disables_shedding(self, tmp):
        daemon, client = start(tmp, runners=0, shed_watermark_s=0.0)
        try:
            daemon.queue.wait_ewma = lambda: 100.0
            reply = client.submit(RUN, tenant="t1", priority="normal")
            assert reply["ok"]
        finally:
            daemon.stop()


class TestDrainFlush:
    def test_stop_flushes_untransitioned_breaker_state(self, tmp, monkeypatch):
        # a sub-threshold failure count has no eager persist — only the
        # drain-path flush writes it (satellite: shutdown must not lose
        # an in-flight probe outcome)
        monkeypatch.setenv("REPRO_GUARD_TRIP", "5")
        daemon, _client = start(tmp)

        def boom(env, n):
            raise RuntimeError("one failure")

        launch = guard.wrap_kernel(
            "drain-key", [("codegen", boom), ("scalar", lambda env, n: (1.0,))]
        )
        launch({}, 1)
        assert not os.path.exists(compile_cache.breaker_path())
        daemon.stop()
        doc = json.loads(open(compile_cache.breaker_path()).read())
        assert doc["kind"] == "guard-breakers"
        assert doc["breakers"][0]["key"] == "drain-key"
        assert doc["breakers"][0]["fails"] == 1


class TestBreakerKillRestart:
    """Acceptance: tripped-breaker state survives daemon kill -9 + restart."""

    SUBMIT = ["submit", "Heston", "--kind", "run", "--engine", "codegen",
              "--size", "numQuotes=32", "--size", "numCand=8",
              "--size", "numInt=16"]

    @staticmethod
    def _serve(spool, sock, logf, env, faults=None):
        cmd = [sys.executable, "-m", "repro", "serve",
               "--socket", sock, "--spool", spool]
        if faults:
            cmd += ["--faults", faults]
        proc = subprocess.Popen(cmd, env=env, stdout=open(logf, "a"),
                                stderr=subprocess.STDOUT)
        client = ServiceClient(socket_path=sock, timeout=5)
        deadline = time.time() + 30
        while time.time() < deadline:
            try:
                client.ping()
                return proc, client
            except (ServiceError, OSError):
                if proc.poll() is not None:
                    raise AssertionError(open(logf).read())
                time.sleep(0.1)
        proc.kill()
        raise AssertionError("daemon did not come up:\n" + open(logf).read())

    def _cli(self, env, *argv):
        out = subprocess.run([sys.executable, "-m", "repro", *argv],
                             env=env, capture_output=True, text=True)
        assert out.returncode == 0, out.stdout + out.stderr
        return out

    def test_tripped_breaker_survives_kill9(self, tmp):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        env["REPRO_CODEGEN_CACHE"] = os.path.join(tmp, "kcache")
        env["REPRO_GUARD_TRIP"] = "1"
        sock = os.path.join(tmp, "g.sock")
        spool = os.path.join(tmp, "g-spool")
        logf = os.path.join(tmp, "g.log")
        plan = json.dumps({"rules": [
            {"site": "exec.launch.codegen", "kind": "launch", "p": 1.0},
        ]})
        proc, _c = self._serve(spool, sock, logf, env, faults=plan)
        out = self._cli(env, *self.SUBMIT, "--socket", sock, "--wait", "120")
        assert "done" in out.stdout  # demotion healed every launch
        health = json.loads(self._cli(
            env, "health", "--json", "--socket", sock
        ).stdout)
        tripped = health["guard"]["breakers"]
        assert tripped and all(b["state"] == "open" for b in tripped)

        proc.send_signal(signal.SIGKILL)  # no drain, no flush
        proc.wait(timeout=30)
        try:
            os.unlink(sock)
        except OSError:
            pass

        proc, _c = self._serve(spool, sock, logf, env)  # faults gone
        try:
            health = json.loads(self._cli(
                env, "health", "--json", "--socket", sock
            ).stdout)
            resumed = health["guard"]["breakers"]
            assert {b["key"] for b in resumed} == {b["key"] for b in tripped}
            assert all(b["state"] == "open" for b in resumed)
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
