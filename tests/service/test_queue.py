"""Fair-share queue: scheduling order, back-pressure, drain semantics."""

import threading

import pytest

from repro.service.queue import FairShareQueue, QueueFull


def drain(q):
    out = []
    while True:
        item = q.take(timeout=0)
        if item is None:
            return out
        out.append(item)


class TestFairShare:
    def test_round_robin_across_tenants(self):
        q = FairShareQueue(max_depth=64)
        for i in range(4):
            q.put("a", "normal", f"a{i}")
        for i in range(4):
            q.put("b", "normal", f"b{i}")
        assert drain(q) == ["a0", "b0", "a1", "b1", "a2", "b2", "a3", "b3"]

    def test_two_tenants_flooding_converge_to_equal_service(self):
        # the satellite's acceptance shape: tenant a floods 3x harder than
        # tenant b, yet while both have work pending they are served
        # exactly alternately — equal shares, not proportional-to-demand
        q = FairShareQueue(max_depth=256)
        for i in range(90):
            q.put("a", "normal", ("a", i))
        for i in range(30):
            q.put("b", "normal", ("b", i))
        first60 = [q.take(timeout=0) for _ in range(60)]
        assert sum(1 for t, _ in first60 if t == "a") == 30
        assert sum(1 for t, _ in first60 if t == "b") == 30
        assert q.served == {"a": 30, "b": 30}
        # b exhausted: the rest is all a's, FIFO
        rest = drain(q)
        assert rest == [("a", i) for i in range(30, 90)]

    def test_late_tenant_is_not_starved(self):
        q = FairShareQueue(max_depth=64)
        for i in range(10):
            q.put("early", "normal", ("early", i))
        assert q.take(timeout=0) == ("early", 0)
        q.put("late", "normal", ("late", 0))
        taken = [q.take(timeout=0) for _ in range(2)]
        assert ("late", 0) in taken

    def test_priority_lane_drains_first_within_tenant(self):
        q = FairShareQueue(max_depth=64)
        q.put("a", "normal", "n0")
        q.put("a", "normal", "n1")
        q.put("a", "high", "h0")
        assert drain(q) == ["h0", "n0", "n1"]

    def test_priority_does_not_override_fairness(self):
        # a's high-priority flood must not starve b's normal lane
        q = FairShareQueue(max_depth=64)
        for i in range(3):
            q.put("a", "high", f"a{i}")
        q.put("b", "normal", "b0")
        assert drain(q) == ["a0", "b0", "a1", "a2"]

    def test_unknown_priority_rejected(self):
        q = FairShareQueue()
        with pytest.raises(ValueError):
            q.put("a", "urgent", "x")


class TestBackPressure:
    def test_over_depth_rejected_deterministically(self):
        q = FairShareQueue(max_depth=4, retry_after_s=2.5)
        for i in range(4):
            q.put("t", "normal", i)
        # the (depth+1)-th submission is refused, always — and keeps
        # being refused until something is taken
        for _ in range(3):
            with pytest.raises(QueueFull) as exc:
                q.put("t", "normal", 99)
            assert exc.value.depth == 4
            assert exc.value.retry_after_s == 2.5
        q.take(timeout=0)
        q.put("t", "normal", 4)  # a slot freed: admitted again
        assert q.depth() == 4

    def test_rejection_counts_no_tenant_as_served(self):
        q = FairShareQueue(max_depth=1)
        q.put("a", "normal", 0)
        with pytest.raises(QueueFull):
            q.put("b", "normal", 1)
        assert q.served == {}

    def test_depth_bound_is_global_not_per_tenant(self):
        q = FairShareQueue(max_depth=3)
        q.put("a", "normal", 0)
        q.put("b", "normal", 1)
        q.put("c", "normal", 2)
        with pytest.raises(QueueFull):
            q.put("d", "normal", 3)


class TestTakeAndClose:
    def test_take_blocks_until_put(self):
        q = FairShareQueue()
        got = []

        def taker():
            got.append(q.take(timeout=5))

        t = threading.Thread(target=taker)
        t.start()
        q.put("a", "normal", "x")
        t.join(timeout=5)
        assert got == ["x"]

    def test_take_timeout_returns_none(self):
        q = FairShareQueue()
        assert q.take(timeout=0.01) is None

    def test_close_refuses_new_work_but_drains_admitted(self):
        q = FairShareQueue()
        q.put("a", "normal", "x")
        q.close()
        with pytest.raises(RuntimeError):
            q.put("a", "normal", "y")
        assert q.take(timeout=0) == "x"  # admitted work still served
        assert q.take(timeout=0) is None  # then closed-and-empty

    def test_close_wakes_blocked_takers(self):
        q = FairShareQueue()
        got = []

        def taker():
            got.append(q.take(timeout=30))

        t = threading.Thread(target=taker)
        t.start()
        q.close()
        t.join(timeout=5)
        assert not t.is_alive()
        assert got == [None]


class TestRemove:
    def test_remove_queued_item(self):
        q = FairShareQueue()
        q.put("a", "normal", "x")
        q.put("a", "normal", "y")
        assert q.remove(lambda item: item == "x") == "x"
        assert q.depth() == 1
        assert drain(q) == ["y"]

    def test_remove_missing_returns_none(self):
        q = FairShareQueue()
        q.put("a", "normal", "x")
        assert q.remove(lambda item: item == "z") is None
        assert q.depth() == 1

    def test_per_tenant_snapshot(self):
        q = FairShareQueue()
        q.put("a", "high", 1)
        q.put("a", "normal", 2)
        q.put("b", "normal", 3)
        assert q.per_tenant() == {"a": {"high": 1, "normal": 1},
                                  "b": {"normal": 1}}
