"""The service CLI commands (submit/jobs/cancel/fetch) against a live
in-process daemon, via direct ``main()`` invocation."""

import json
import os
import shutil
import tempfile

import pytest

from repro.cli import main
from repro.service import ServiceDaemon


@pytest.fixture
def daemon():
    tmp = tempfile.mkdtemp(prefix="repro-svc-cli-")
    d = ServiceDaemon(os.path.join(tmp, "spool"),
                      socket_path=os.path.join(tmp, "cli.sock"), runners=2)
    d.start()
    yield d
    d.stop()
    shutil.rmtree(tmp, ignore_errors=True)


def run(capsys, *argv):
    code = main(list(argv))
    cap = capsys.readouterr()
    return code, cap.out, cap.err


SUBMIT = ("submit", "matmul", "--dataset", "n=16,m=16",
          "--proposals", "30", "--batch-size", "4")


class TestSubmit:
    def test_stream_prints_parseable_json_events(self, daemon, capsys):
        code, out, _ = run(capsys, *SUBMIT, "--stream",
                           "--socket", daemon.socket_path)
        assert code == 0
        lines = [json.loads(ln) for ln in out.strip().splitlines()]
        assert lines[0]["ok"]  # admission reply
        names = [d.get("event") for d in lines[1:]]
        assert names[0] == "queued" and names[-1] == "done"
        assert "progress" in names

    def test_wait_reports_cached_duplicate(self, daemon, capsys):
        code, _, _ = run(capsys, *SUBMIT, "--wait", "30",
                         "--socket", daemon.socket_path)
        assert code == 0
        code, out, _ = run(capsys, *SUBMIT, "--wait", "30",
                           "--tenant", "other", "--socket", daemon.socket_path)
        assert code == 0
        assert "done (cached)" in out

    def test_submit_without_connection_flags_is_user_error(self, daemon,
                                                           capsys):
        code, _, err = run(capsys, *SUBMIT)
        assert code == 2
        assert err.startswith("repro: error:")

    def test_unreachable_daemon_is_user_error(self, daemon, capsys):
        code, _, err = run(capsys, *SUBMIT, "--socket", "/nonexistent.sock")
        assert code == 2
        assert "cannot reach daemon" in err

    def test_429_exits_1_with_retry_hint(self, daemon, capsys):
        # fill the queue through a runnerless daemon
        daemon2 = ServiceDaemon(os.path.join(daemon.spool.root, "..", "sp2"),
                                socket_path=daemon.socket_path + "2",
                                runners=0, max_depth=1, retry_after_s=2.0)
        daemon2.start()
        try:
            assert run(capsys, *SUBMIT, "--socket", daemon2.socket_path)[0] == 0
            code, _, err = run(capsys, *SUBMIT, "--seed", "9",
                               "--socket", daemon2.socket_path)
            assert code == 1
            assert "retry after 2s" in err
        finally:
            daemon2.stop()


class TestJobsAndFetch:
    def test_jobs_lists_and_fetch_round_trips(self, daemon, capsys, tmp_path):
        code, out, _ = run(capsys, *SUBMIT, "--wait", "30",
                           "--socket", daemon.socket_path)
        assert code == 0
        job_id = out.split()[1]
        code, out, _ = run(capsys, "jobs", "--socket", daemon.socket_path)
        assert code == 0
        assert job_id in out and "done" in out
        art = tmp_path / "artifact.json"
        code, out, _ = run(capsys, "fetch", job_id, "--output", str(art),
                           "--socket", daemon.socket_path)
        assert code == 0
        doc = json.loads(art.read_text())
        assert doc["kind"] == "tune"
        assert doc["thresholds"]["program"] == "matmul"

    def test_fetch_unknown_job_is_user_error(self, daemon, capsys):
        code, _, err = run(capsys, "fetch", "j999",
                           "--socket", daemon.socket_path)
        assert code == 2
        assert "unknown job" in err

    def test_cancel_queued_job(self, daemon, capsys):
        daemon2 = ServiceDaemon(os.path.join(daemon.spool.root, "..", "sp3"),
                                socket_path=daemon.socket_path + "3",
                                runners=0)
        daemon2.start()
        try:
            code, out, _ = run(capsys, *SUBMIT,
                               "--socket", daemon2.socket_path)
            assert code == 0
            job_id = out.split()[1]
            code, out, _ = run(capsys, "cancel", job_id,
                               "--socket", daemon2.socket_path)
            assert code == 0
            assert "canceled" in out
        finally:
            daemon2.stop()
