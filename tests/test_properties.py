"""Cross-cutting property tests over randomly generated programs.

Each property pins an invariant that the pipeline relies on:

* A-normalisation, fusion and simplification preserve value semantics.
* The full compile pipeline preserves semantics in every mode (deeper
  random programs than the flatten-level test).
* Normalisation establishes the ANF operand invariant.
* Code size never shrinks under multi-versioning.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_program
from repro.interp import Evaluator, run_program
from repro.ir import source as S
from repro.ir.builder import (
    Program,
    f32,
    if_,
    let_,
    loop_,
    map_,
    op2,
    redomap_,
    reduce_,
    scan_,
    v,
)
from repro.ir.types import F32, array_of
from repro.passes import fuse, normalize, simplify
from repro.sizes import SizeVar

EV = Evaluator(sizes={"n": 3, "m": 4})


# -- random expression generator over a fixed environment -----------------------
#
# Environment: xs : [n]f32, xss : [n][m]f32, k : f32 scalar.

def _ops():
    return st.sampled_from(["+", "*", "max"])


@st.composite
def scalar_exp(draw, depth=2):
    """A random scalar expression over xs/xss/k."""
    if depth == 0:
        return draw(
            st.sampled_from(
                [v("k"), f32(1.5), f32(0.25), v("xs")[S.Lit(0, __import__("repro.ir.types", fromlist=["I64"]).I64)]]
            )
        )
    choice = draw(st.integers(0, 4))
    if choice == 0:
        op = draw(_ops())
        a = draw(scalar_exp(depth=depth - 1))
        b = draw(scalar_exp(depth=depth - 1))
        return S.BinOp(op, a, b)
    if choice == 1:
        ne = f32(0.0)
        op = draw(_ops())
        if op == "max":
            ne = f32(-1e9)
        return reduce_(op2(op), ne, v("xs"))
    if choice == 2:
        return redomap_(
            op2("+"), lambda x: x * draw(st.floats(0.5, 2.0)), f32(0.0), v("xs")
        )
    if choice == 3:
        return loop_(
            [f32(0.0)],
            S.Lit(draw(st.integers(1, 3)), __import__("repro.ir.types", fromlist=["I64"]).I64),
            lambda i, a: a + draw(scalar_exp(depth=0)),
        )
    return if_(
        v("k").gt(0.0),
        draw(scalar_exp(depth=depth - 1)),
        draw(scalar_exp(depth=depth - 1)),
    )


@st.composite
def array_exp(draw):
    """A random array-producing nested-parallel expression."""
    kind = draw(st.integers(0, 3))
    if kind == 0:
        inner = draw(scalar_exp(depth=1))
        return map_(lambda x: x + inner, v("xs"))
    if kind == 1:
        return map_(
            lambda row: reduce_(op2("+"), f32(0.0), row), v("xss")
        )
    if kind == 2:
        return map_(
            lambda row: scan_(op2("max"), f32(-1e9), row), v("xss")
        )
    scale = draw(st.floats(0.5, 2.0))
    return let_(
        map_(lambda x: x * scale, v("xs")),
        lambda ys: map_(lambda y: y + 1.0, ys),
    )


def _env(seed):
    rng = np.random.default_rng(seed)
    return {
        "xs": rng.uniform(-2, 2, 3).astype(np.float32),
        "xss": rng.uniform(-2, 2, (3, 4)).astype(np.float32),
        "k": np.float32(rng.uniform(-1, 1)),
    }


def _same(a, b):
    return all(
        np.allclose(x, y, rtol=1e-4, equal_nan=True) for x, y in zip(a, b)
    )


@settings(max_examples=40, deadline=None)
@given(scalar_exp(), st.integers(0, 2**31))
def test_normalize_preserves_scalars(e, seed):
    env = _env(seed)
    assert _same(EV.eval(e, env), EV.eval(normalize(e), env))


@settings(max_examples=40, deadline=None)
@given(array_exp(), st.integers(0, 2**31))
def test_normalize_preserves_arrays(e, seed):
    env = _env(seed)
    assert _same(EV.eval(e, env), EV.eval(normalize(e), env))


@settings(max_examples=40, deadline=None)
@given(array_exp(), st.integers(0, 2**31))
def test_fuse_preserves(e, seed):
    env = _env(seed)
    ne = fuse(normalize(e))
    assert _same(EV.eval(e, env), EV.eval(ne, env))


@settings(max_examples=40, deadline=None)
@given(scalar_exp(), st.integers(0, 2**31))
def test_simplify_preserves(e, seed):
    env = _env(seed)
    assert _same(EV.eval(e, env), EV.eval(simplify(e), env))


@settings(max_examples=40, deadline=None)
@given(array_exp(), st.integers(0, 2**31))
def test_anf_operand_invariant(e, seed):
    from repro.ir.traverse import walk

    blocky = (S.Map, S.Reduce, S.Scan, S.Redomap, S.Scanomap, S.Let, S.If, S.Loop)
    out = normalize(e)
    for node in walk(out):
        if isinstance(node, S.BinOp):
            assert not isinstance(node.x, blocky)
            assert not isinstance(node.y, blocky)
        elif isinstance(node, S.Index):
            assert not isinstance(node.arr, blocky)


@settings(max_examples=20, deadline=None)
@given(array_exp(), st.integers(0, 2**31))
def test_full_pipeline_preserves(e, seed):
    n, m = SizeVar("n"), SizeVar("m")
    prog = Program(
        "rand",
        [("xs", array_of(F32, n)), ("xss", array_of(F32, n, m)), ("k", F32)],
        e,
    )
    env = _env(seed)
    ref = run_program(prog, env)
    for mode in ("moderate", "incremental", "full"):
        cp = compile_program(prog, mode)
        got = run_program(prog, env, body=cp.body)
        assert _same(ref, got), mode


@settings(max_examples=20, deadline=None)
@given(array_exp())
def test_incremental_never_smaller(e):
    n, m = SizeVar("n"), SizeVar("m")
    prog = Program(
        "rand",
        [("xs", array_of(F32, n)), ("xss", array_of(F32, n, m)), ("k", F32)],
        e,
    )
    mf = compile_program(prog, "moderate")
    inc = compile_program(prog, "incremental")
    assert inc.code_size() >= mf.code_size() * 0.5
    if inc.registry.items:
        assert inc.code_size() > mf.code_size()
