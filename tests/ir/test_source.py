"""Tests for source AST construction and operator sugar."""

import pytest

from repro.ir import source as S
from repro.ir.builder import f32, i64, lam, op2, v
from repro.ir.types import BOOL, F32, I64


class TestLiterals:
    def test_lift_int(self):
        e = S.lift(3)
        assert isinstance(e, S.Lit) and e.type == I64

    def test_lift_float(self):
        e = S.lift(3.5)
        assert isinstance(e, S.Lit) and e.type == F32

    def test_lift_bool(self):
        e = S.lift(True)
        assert isinstance(e, S.Lit) and e.type == BOOL

    def test_lift_exp_identity(self):
        x = v("x")
        assert S.lift(x) is x

    def test_lift_rejects_junk(self):
        with pytest.raises(TypeError):
            S.lift("nope")


class TestOperatorSugar:
    def test_add(self):
        e = v("x") + 1
        assert isinstance(e, S.BinOp) and e.op == "+"

    def test_radd(self):
        e = 1 + v("x")
        assert isinstance(e, S.BinOp) and isinstance(e.x, S.Lit)

    def test_chain(self):
        e = v("x") * v("y") + v("z")
        assert e.op == "+" and e.x.op == "*"

    def test_comparisons(self):
        assert (v("x").lt(3)).op == "<"
        assert (v("x").ge(3)).op == ">="
        assert (v("x").eq(3)).op == "=="

    def test_neg(self):
        e = -v("x")
        assert isinstance(e, S.UnOp) and e.op == "neg"

    def test_getitem_single(self):
        e = v("xs")[0]
        assert isinstance(e, S.Index) and len(e.idxs) == 1

    def test_getitem_multi(self):
        e = v("xss")[v("i"), v("j")]
        assert len(e.idxs) == 2


class TestNodeValidation:
    def test_unknown_binop_rejected(self):
        with pytest.raises(ValueError):
            S.BinOp("@@", v("x"), v("y"))

    def test_unknown_unop_rejected(self):
        with pytest.raises(ValueError):
            S.UnOp("frobnicate", v("x"))

    def test_map_arity_mismatch(self):
        with pytest.raises(ValueError):
            S.Map(op2("+"), (v("xs"),))

    def test_reduce_operator_arity(self):
        with pytest.raises(ValueError):
            S.Reduce(lam(lambda a: a), [f32(0.0)], (v("xs"),))

    def test_reduce_ne_count(self):
        with pytest.raises(ValueError):
            S.Reduce(op2("+"), [f32(0.0), f32(1.0)], (v("xs"),))

    def test_scan_operator_arity(self):
        with pytest.raises(ValueError):
            S.Scan(lam(lambda a: a), [f32(0.0)], (v("xs"),))

    def test_redomap_arities(self):
        with pytest.raises(ValueError):
            S.Redomap(op2("+"), op2("*"), [f32(0.0)], (v("xs"),))

    def test_rearrange_needs_permutation(self):
        with pytest.raises(ValueError):
            S.Rearrange((0, 0), v("xss"))

    def test_loop_param_mismatch(self):
        with pytest.raises(ValueError):
            S.Loop(("a", "b"), (i64(0),), "i", i64(3), v("a"))

    def test_transpose_is_rearrange(self):
        e = S.transpose(v("xss"))
        assert isinstance(e, S.Rearrange) and e.perm == (1, 0)


class TestSizeE:
    def test_from_string(self):
        e = S.SizeE("n")
        assert e.size.free_vars() == {"n"}

    def test_from_int(self):
        e = S.SizeE(4)
        assert e.size.eval({}) == 4
