"""Tests for the type checker and the target level validator."""

import pytest

from repro.ir import source as S
from repro.ir import target as T
from repro.ir.builder import (
    f32,
    i64,
    if_,
    iota,
    lam,
    loop_,
    map_,
    op2,
    redomap_,
    reduce_,
    replicate,
    scan_,
    scanomap_,
    transpose,
    v,
)
from repro.ir.typecheck import TypeError_, typeof, typeof1, validate_levels
from repro.ir.types import BOOL, F32, F64, I64, array_of
from repro.sizes import SizeVar

N, M = SizeVar("n"), SizeVar("m")
ENV = {
    "xs": array_of(F32, N),
    "ys": array_of(F32, N),
    "zs": array_of(F32, M),
    "xss": array_of(F32, N, M),
    "k": I64,
    "b": BOOL,
}


class TestScalars:
    def test_var(self):
        assert typeof1(v("k"), ENV) == I64

    def test_unbound(self):
        with pytest.raises(TypeError_):
            typeof(v("nope"), ENV)

    def test_binop_join(self):
        assert typeof1(v("k") + 1, ENV) == I64
        assert typeof1(f32(1.0) + 1, ENV) == F32  # numeric join: float wins

    def test_comparison_is_bool(self):
        assert typeof1(v("k").lt(3), ENV) == BOOL

    def test_logical_needs_bool(self):
        with pytest.raises(TypeError_):
            typeof(S.BinOp("&&", v("k"), v("b")), ENV)

    def test_binop_on_array_rejected(self):
        with pytest.raises(TypeError_):
            typeof(v("xs") + 1, ENV)

    def test_unop_conversion(self):
        assert typeof1(S.UnOp("to_f64", v("k")), ENV) == F64


class TestStructured:
    def test_let(self):
        e = S.Let(("a",), v("k") + 1, v("a") * 2)
        assert typeof1(e, ENV) == I64

    def test_let_arity_mismatch(self):
        with pytest.raises(TypeError_):
            typeof(S.Let(("a", "c"), v("k"), v("a")), ENV)

    def test_if(self):
        assert typeof1(if_(v("b"), v("k"), i64(0)), ENV) == I64

    def test_if_nonbool_cond(self):
        with pytest.raises(TypeError_):
            typeof(if_(v("k").eq(v("k")), v("k"), v("k")).cond + 1, ENV)

    def test_if_branch_mismatch(self):
        with pytest.raises(TypeError_):
            typeof(if_(v("b"), v("k"), v("xs")), ENV)

    def test_index_full(self):
        assert typeof1(v("xss")[v("k"), v("k")], ENV) == F32

    def test_index_partial(self):
        assert typeof1(v("xss")[v("k")], ENV) == array_of(F32, M)

    def test_index_too_deep(self):
        with pytest.raises(TypeError_):
            typeof(v("xs")[v("k"), v("k")], ENV)

    def test_index_float_idx(self):
        with pytest.raises(TypeError_):
            typeof(v("xs")[f32(0.0)], ENV)

    def test_iota(self):
        assert typeof1(iota(v("k")), ENV) == array_of(I64, SizeVar("k"))

    def test_replicate(self):
        assert typeof1(replicate(i64(4), v("xs")), ENV) == array_of(F32, 4, N)

    def test_rearrange(self):
        assert typeof1(transpose(v("xss")), ENV) == array_of(F32, M, N)

    def test_rearrange_rank_mismatch(self):
        with pytest.raises(TypeError_):
            typeof(S.Rearrange((1, 0), v("xs")), ENV)

    def test_loop(self):
        e = loop_([f32(0.0)], v("k"), lambda i, a: a + 1.0)
        assert typeof1(e, ENV) == F32

    def test_loop_param_type_drift(self):
        e = S.Loop(("a",), (f32(0.0),), "i", v("k"), v("xs"))
        with pytest.raises(TypeError_):
            typeof(e, ENV)


class TestSoacs:
    def test_map(self):
        e = map_(lambda x: x * 2.0, v("xs"))
        assert typeof1(e, ENV) == array_of(F32, N)

    def test_map_multi(self):
        e = map_(lambda x, y: (x + y, x * y), v("xs"), v("ys"))
        ts = typeof(e, ENV)
        assert ts == (array_of(F32, N), array_of(F32, N))

    def test_map_size_mismatch_constant(self):
        env = dict(ENV, a=array_of(F32, 3), c=array_of(F32, 4))
        with pytest.raises(TypeError_):
            typeof(map_(lambda x, y: x + y, v("a"), v("c")), env)

    def test_map_over_scalar(self):
        with pytest.raises(TypeError_):
            typeof(map_(lambda x: x, v("k")), ENV)

    def test_reduce(self):
        assert typeof1(reduce_(op2("+"), f32(0.0), v("xs")), ENV) == F32

    def test_reduce_ne_type_mismatch(self):
        with pytest.raises(TypeError_):
            typeof(reduce_(op2("+"), v("b"), v("xs")), ENV)

    def test_scan(self):
        assert typeof1(scan_(op2("+"), f32(0.0), v("xs")), ENV) == array_of(F32, N)

    def test_redomap(self):
        e = redomap_(op2("+"), lambda x, y: x * y, f32(0.0), v("xs"), v("ys"))
        assert typeof1(e, ENV) == F32

    def test_scanomap(self):
        e = scanomap_(op2("+"), lambda x: x * 2.0, f32(0.0), v("xs"))
        assert typeof1(e, ENV) == array_of(F32, N)

    def test_nested_map(self):
        e = map_(lambda row: map_(lambda x: x + 1.0, row), v("xss"))
        assert typeof1(e, ENV) == array_of(F32, N, M)


class TestSegOps:
    def _ctx1(self):
        return T.Ctx([T.Binding(("x",), (v("xs"),), N)])

    def _ctx2(self):
        return T.Ctx(
            [
                T.Binding(("row",), (v("xss"),), N),
                T.Binding(("x",), (v("row"),), M),
            ]
        )

    def test_segmap(self):
        e = T.SegMap(1, self._ctx1(), v("x") + 1.0)
        assert typeof1(e, ENV) == array_of(F32, N)

    def test_segmap_nested_ctx(self):
        e = T.SegMap(1, self._ctx2(), v("x") * 2.0)
        assert typeof1(e, ENV) == array_of(F32, N, M)

    def test_segred_reduces_innermost(self):
        e = T.SegRed(1, self._ctx2(), op2("+"), [f32(0.0)], v("x"))
        assert typeof1(e, ENV) == array_of(F32, N)

    def test_segscan_keeps_shape(self):
        e = T.SegScan(1, self._ctx2(), op2("+"), [f32(0.0)], v("x"))
        assert typeof1(e, ENV) == array_of(F32, N, M)

    def test_segmap_needs_context(self):
        with pytest.raises(ValueError):
            T.SegMap(1, T.Ctx(), v("x"))

    def test_parcmp_is_bool(self):
        assert typeof1(T.ParCmp(N, "t0"), ENV) == BOOL


class TestValidateLevels:
    def _ctx(self, params, arrays, size):
        return T.Ctx([T.Binding(params, arrays, size)])

    def test_flat_ok(self):
        e = T.SegMap(1, self._ctx(("x",), (v("xs"),), N), v("x") + 1.0)
        validate_levels(e, 1)

    def test_level_too_high(self):
        e = T.SegMap(1, self._ctx(("x",), (v("xs"),), N), v("x"))
        with pytest.raises(TypeError_):
            validate_levels(e, 0)

    def test_level0_must_be_sequential(self):
        inner = T.SegMap(0, self._ctx(("y",), (v("x"),), M), v("y"))
        outer = T.SegMap(0, self._ctx(("x",), (v("xss"),), N), inner)
        with pytest.raises(TypeError_):
            validate_levels(outer, 1)

    def test_proper_nesting_ok(self):
        inner = T.SegMap(0, self._ctx(("y",), (v("x"),), M), v("y") + 1.0)
        outer = T.SegMap(1, self._ctx(("x",), (v("xss"),), N), inner)
        validate_levels(outer, 1)

    def test_same_level_nesting_rejected(self):
        inner = T.SegMap(1, self._ctx(("y",), (v("x"),), M), v("y"))
        outer = T.SegMap(1, self._ctx(("x",), (v("xss"),), N), inner)
        with pytest.raises(TypeError_):
            validate_levels(outer, 1)

    def test_parallel_operator_rejected(self):
        seg = T.SegRed(
            0, self._ctx(("z",), (v("zs"),), M), op2("+"), [f32(0.0)], v("z")
        )
        bad_op = S.Lambda(("a", "b"), seg)
        e = T.SegRed(1, self._ctx(("x",), (v("xs"),), N), bad_op, [f32(0.0)], v("x"))
        with pytest.raises(TypeError_):
            validate_levels(e, 1)

    def test_sequential_soac_in_operator_allowed(self):
        # source SOACs are *sequential* in the target language, so a reduce
        # inside an operator is fine
        op = lam(lambda a, b: reduce_(op2("+"), f32(0.0), v("zs")))
        e = T.SegRed(1, self._ctx(("x",), (v("xs"),), N), op, [f32(0.0)], v("x"))
        validate_levels(e, 1)

    def test_sequential_soacs_allowed_anywhere(self):
        body = reduce_(op2("+"), f32(0.0), v("zs"))
        e = T.SegMap(1, self._ctx(("x",), (v("xs"),), N), body)
        validate_levels(e, 1)
