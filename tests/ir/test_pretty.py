"""Pretty-printer coverage: every node class renders sensibly."""

from repro.ir import source as S
from repro.ir import target as T
from repro.ir.builder import (
    f32,
    i64,
    if_,
    iota,
    lam,
    loop_,
    map_,
    op2,
    redomap_,
    reduce_,
    replicate,
    scan_,
    scanomap_,
    transpose,
    v,
)
from repro.ir.pretty import pretty, pretty_lambda
from repro.sizes import SizeVar


class TestScalars:
    def test_var(self):
        assert pretty(v("x")) == "x"

    def test_literals(self):
        assert pretty(i64(3)) == "3"
        assert pretty(f32(1.5)) == "1.5f"
        assert pretty(S.Lit(True, __import__("repro.ir.types", fromlist=["BOOL"]).BOOL)) == "true"

    def test_binop_infix(self):
        assert pretty(v("a") + v("b")) == "(a + b)"

    def test_minmax_prefix(self):
        assert pretty(S.BinOp("max", v("a"), v("b"))) == "max(a, b)"

    def test_unop(self):
        assert pretty(S.UnOp("sqrt", v("x"))) == "sqrt(x)"

    def test_sizee(self):
        assert "n" in pretty(S.SizeE(SizeVar("n")))


class TestStructured:
    def test_let(self):
        out = pretty(S.Let(("a",), f32(1.0), v("a")))
        assert "let a =" in out and "in a" in out

    def test_if(self):
        out = pretty(if_(v("c"), f32(1.0), f32(2.0)))
        assert "if c" in out and "then" in out and "else" in out

    def test_index(self):
        assert pretty(v("xs")[v("i"), v("j")]) == "xs[i, j]"

    def test_loop(self):
        out = pretty(loop_([f32(0.0)], i64(3), lambda i, a: a))
        assert out.startswith("loop") and "for" in out and "do" in out

    def test_iota_replicate(self):
        assert pretty(iota(i64(3))) == "iota 3"
        assert pretty(replicate(i64(2), f32(0.0))) == "replicate 2 0.0f"

    def test_transpose_special_case(self):
        assert pretty(transpose(v("xss"))) == "transpose xss"
        assert pretty(S.Rearrange((0, 2, 1), v("a"))).startswith("rearrange")

    def test_tuple(self):
        assert pretty(S.TupleExp([v("a"), v("b")])) == "(a, b)"

    def test_intrinsic(self):
        assert pretty(S.Intrinsic("foo", (v("x"),))) == "#foo(x)"


class TestSoacs:
    def test_map(self):
        out = pretty(map_(lambda x: x + 1.0, v("xs")))
        assert out.startswith("map (λ")

    def test_reduce(self):
        out = pretty(reduce_(op2("+"), f32(0.0), v("xs")))
        assert out.startswith("reduce") and "0.0f" in out

    def test_scan(self):
        assert pretty(scan_(op2("+"), f32(0.0), v("xs"))).startswith("scan")

    def test_redomap(self):
        out = pretty(redomap_(op2("+"), lambda x: x, f32(0.0), v("xs")))
        assert out.startswith("redomap")

    def test_scanomap(self):
        out = pretty(scanomap_(op2("+"), lambda x: x, f32(0.0), v("xs")))
        assert out.startswith("scanomap")

    def test_lambda(self):
        out = pretty_lambda(lam(lambda x, y: x * y))
        assert out.startswith("(λ") and "→" in out


class TestTarget:
    def _ctx(self):
        return T.Ctx([T.Binding(("x",), (v("xs"),), SizeVar("n"))])

    def test_segmap(self):
        out = pretty(T.SegMap(1, self._ctx(), v("x") + 1.0))
        assert out.startswith("segmap^1") and "⟨x ∈ xs⟩" in out

    def test_segred(self):
        out = pretty(T.SegRed(0, self._ctx(), op2("+"), [f32(0.0)], v("x")))
        assert out.startswith("segred^0")

    def test_segscan(self):
        out = pretty(T.SegScan(1, self._ctx(), op2("+"), [f32(0.0)], v("x")))
        assert out.startswith("segscan^1")

    def test_parcmp(self):
        out = pretty(T.ParCmp(SizeVar("n"), "t0"))
        assert out == "n ≥ t0"

    def test_repr_uses_pretty(self):
        e = v("a") + v("b")
        assert repr(e) == pretty(e)
