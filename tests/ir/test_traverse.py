"""Tests for traversal: walk, free variables, substitution, map_children."""

from repro.ir import source as S
from repro.ir import target as T
from repro.ir.builder import f32, i64, lam, map_, op2, reduce_, v
from repro.ir.traverse import (
    contains_parallel,
    count_nodes,
    free_vars,
    fresh_name,
    map_children,
    rename_vars,
    subst_vars,
    walk,
)
from repro.sizes import SizeVar


class TestFreshNames:
    def test_fresh_distinct(self):
        assert fresh_name("x") != fresh_name("x")

    def test_fresh_strips_old_suffix(self):
        a = fresh_name("x")
        b = fresh_name(a)
        assert b.startswith("x") and "ζ" in b
        assert b.count("ζ") == 1


class TestWalk:
    def test_walk_yields_all(self):
        e = v("x") + v("y") * v("z")
        kinds = [type(n).__name__ for n in walk(e)]
        assert kinds.count("Var") == 3
        assert kinds.count("BinOp") == 2

    def test_walk_enters_lambdas(self):
        e = map_(lambda x: x + v("free"), v("xs"))
        names = {n.name for n in walk(e) if isinstance(n, S.Var)}
        assert "free" in names

    def test_count_nodes(self):
        assert count_nodes(v("x")) == 1
        assert count_nodes(v("x") + 1) == 3


class TestContainsParallel:
    def test_scalar_not_parallel(self):
        assert not contains_parallel(v("x") + 1)

    def test_map_is_parallel(self):
        assert contains_parallel(map_(lambda x: x, v("xs")))

    def test_nested_in_loop(self):
        e = S.Loop(("a",), (v("xs"),), "i", i64(2), map_(lambda x: x, v("a")))
        assert contains_parallel(e)

    def test_segop_counts_by_default(self):
        ctx = T.Ctx([T.Binding(("x",), (v("xs"),), SizeVar("n"))])
        e = T.SegMap(1, ctx, v("x"))
        assert contains_parallel(e)
        assert not contains_parallel(e, include_target=False)


class TestFreeVars:
    def test_var(self):
        assert free_vars(v("x")) == {"x"}

    def test_let_binds(self):
        e = S.Let(("a",), v("x"), v("a") + v("b"))
        assert free_vars(e) == {"x", "b"}

    def test_let_rhs_not_in_scope(self):
        e = S.Let(("a",), v("a"), v("a"))
        assert free_vars(e) == {"a"}  # the rhs 'a' is free

    def test_lambda_binds(self):
        e = map_(lambda x: x + v("y"), v("xs"))
        assert free_vars(e) == {"xs", "y"}

    def test_loop_binds_params_and_ivar(self):
        e = S.Loop(("acc",), (f32(0.0),), "i", v("n"), v("acc") + v("i"))
        assert free_vars(e) == {"n"}

    def test_segmap_context_scoping(self):
        ctx = T.Ctx(
            [
                T.Binding(("row",), (v("xss"),), SizeVar("n")),
                T.Binding(("x",), (v("row"),), SizeVar("m")),
            ]
        )
        e = T.SegMap(1, ctx, v("x") + v("free"))
        assert free_vars(e) == {"xss", "free"}


class TestSubstitution:
    def test_simple(self):
        e = subst_vars(v("x") + v("y"), {"x": f32(1.0)})
        assert isinstance(e.x, S.Lit)

    def test_shadowed_not_substituted(self):
        e = S.Let(("x",), f32(0.0), v("x"))
        out = subst_vars(e, {"x": f32(9.0)})
        assert isinstance(out.body, S.Var)  # inner x still refers to the let

    def test_capture_avoidance(self):
        # substituting y := x under a binder for x must freshen the binder
        e = S.Let(("x",), f32(0.0), v("x") + v("y"))
        out = subst_vars(e, {"y": v("x")})
        assert out.names[0] != "x"
        # the substituted y is now the OUTER x
        rhs_vars = free_vars(out)
        assert "x" in rhs_vars

    def test_lambda_capture_avoidance(self):
        e = map_(lam(lambda q: q), v("xs"))
        inner = S.Map(S.Lambda(("p",), S.Var("p") + S.Var("w")), (v("xs"),))
        out = subst_vars(inner, {"w": S.Var("p")})
        assert out.lam.params[0] != "p"
        assert "p" in free_vars(out)

    def test_rename(self):
        e = rename_vars(v("a") + v("b"), {"a": "z"})
        assert free_vars(e) == {"z", "b"}

    def test_loop_binder_freshened(self):
        e = S.Loop(("acc",), (v("init"),), "i", i64(3), v("acc") + v("k"))
        out = subst_vars(e, {"k": v("acc")})
        assert out.params[0] != "acc"
        assert "acc" in free_vars(out)


class TestMapChildren:
    def test_rebuild_binop(self):
        e = v("x") + v("y")
        out = map_children(e, lambda c: f32(1.0) if isinstance(c, S.Var) else c)
        assert isinstance(out.x, S.Lit) and isinstance(out.y, S.Lit)

    def test_identity_semantics(self):
        e = reduce_(op2("+"), f32(0.0), map_(lambda x: x * 2.0, v("xs")))
        out = map_children(e, lambda c: c)
        assert type(out) is type(e)
        assert count_nodes(out) == count_nodes(e)

    def test_rebuilds_lambda_bodies(self):
        e = map_(lambda x: x + 1, v("xs"))
        seen = []
        map_children(e, lambda c: (seen.append(type(c).__name__), c)[1])
        assert "BinOp" in seen  # lambda body visited as a child
