"""Builder DSL tests."""

import numpy as np
import pytest

from repro.interp import Evaluator
from repro.ir import source as S
from repro.ir.builder import (
    Program,
    f32,
    i64,
    lam,
    let_,
    lets,
    loop_,
    map_,
    op2,
    size_e,
    v,
)
from repro.ir.types import F32, I64, array_of
from repro.sizes import SizeVar

EV = Evaluator()


class TestLambdas:
    def test_param_names_from_python(self):
        l_ = lam(lambda alpha, beta: alpha + beta)
        assert l_.params[0].startswith("alpha")
        assert l_.params[1].startswith("beta")

    def test_params_fresh_across_instances(self):
        a = lam(lambda x: x)
        b = lam(lambda x: x)
        assert a.params[0] != b.params[0]

    def test_tuple_body_becomes_tupleexp(self):
        l_ = lam(lambda x: (x, x))
        assert isinstance(l_.body, S.TupleExp)

    def test_op2(self):
        l_ = op2("max")
        assert isinstance(l_.body, S.BinOp) and l_.body.op == "max"


class TestLets:
    def test_let_single(self):
        e = let_(f32(2.0), lambda a: a * a)
        assert EV.eval1(e, {}) == 4.0

    def test_let_multi(self):
        e = let_(
            map_(lambda x: (x, x * 2.0), v("xs")),
            lambda as_, bs: S.TupleExp([as_, bs]),
        )
        outs = EV.eval(e, {"xs": np.asarray([1.0], np.float32)})
        assert len(outs) == 2

    def test_let_explicit_names(self):
        e = let_(f32(1.0), lambda q: q, names="custom")
        assert e.names[0].startswith("custom")

    def test_lets_chain(self):
        e = lets(
            f32(1.0),
            f32(2.0),
            result=lambda a, b: a + b,
        )
        assert EV.eval1(e, {}) == 3.0


class TestLoop:
    def test_loop_builder(self):
        e = loop_([i64(1)], i64(4), lambda i, a: a * 2)
        assert EV.eval1(e, {}) == 16

    def test_loop_arity_check(self):
        with pytest.raises(ValueError):
            loop_([i64(0), i64(1)], i64(2), lambda i, a: a)

    def test_loop_tuple_result(self):
        e = loop_([i64(0), i64(0)], i64(3), lambda i, a, b: (a + 1, b + 2))
        outs = EV.eval(e, {})
        assert (outs[0], outs[1]) == (3, 6)


class TestProgram:
    def test_size_vars(self):
        prog = Program(
            "p",
            [("xss", array_of(F32, SizeVar("n"), SizeVar("m"))), ("k", I64)],
            v("k"),
        )
        assert prog.size_vars() == {"n", "m"}

    def test_check_returns_types(self):
        prog = Program("p", [("k", I64)], v("k") + 1)
        assert prog.check() == (I64,)

    def test_repr_contains_signature(self):
        prog = Program("myprog", [("k", I64)], v("k"))
        assert "def myprog" in repr(prog)
        assert "k: i64" in repr(prog)

    def test_size_e(self):
        e = size_e("n")
        assert isinstance(e, S.SizeE)
        assert Evaluator(sizes={"n": 9}).eval1(e, {}) == 9
