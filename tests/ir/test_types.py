"""Tests for the IR type system."""

import pytest

from repro.ir.types import (
    BOOL,
    F32,
    F64,
    I32,
    I64,
    ArrayType,
    array_of,
    elem_type,
    peel,
    rank,
    wrap,
)
from repro.sizes import SizeVar


class TestScalarTypes:
    def test_identity(self):
        assert F32 == F32
        assert F32 != F64

    def test_widths(self):
        assert F32.nbytes == 4
        assert F64.nbytes == 8
        assert I64.nbytes == 8
        assert BOOL.nbytes == 1

    def test_classification(self):
        assert F32.is_float and not F32.is_integral
        assert I32.is_integral and not I32.is_float
        assert not BOOL.is_float and not BOOL.is_integral

    def test_hashable(self):
        assert len({F32, F64, F32}) == 2


class TestArrayTypes:
    def test_construction(self):
        t = array_of(F32, "n", "m")
        assert t.rank == 2
        assert t.elem == F32
        assert t.outer_size == SizeVar("n")

    def test_empty_shape_rejected(self):
        with pytest.raises(ValueError):
            ArrayType((), F32)

    def test_row_type_vector(self):
        t = array_of(F32, "n")
        assert t.row_type() == F32

    def test_row_type_matrix(self):
        t = array_of(F32, "n", "m")
        assert t.row_type() == array_of(F32, "m")

    def test_nested_array_of(self):
        inner = array_of(F32, "m")
        t = array_of(inner, "n")
        assert t == array_of(F32, "n", "m")

    def test_equality(self):
        assert array_of(F32, "n") == array_of(F32, "n")
        assert array_of(F32, "n") != array_of(F32, "m")
        assert array_of(F32, "n") != array_of(F64, "n")

    def test_repr(self):
        assert repr(array_of(F32, "n", 4)) == "[n][4]f32"


class TestHelpers:
    def test_rank(self):
        assert rank(F32) == 0
        assert rank(array_of(F32, "n", "m")) == 2

    def test_elem_type(self):
        assert elem_type(F32) == F32
        assert elem_type(array_of(I32, "n")) == I32

    def test_peel(self):
        assert peel(array_of(F32, "n", "m")) == array_of(F32, "m")
        with pytest.raises(TypeError):
            peel(F32)

    def test_wrap(self):
        assert wrap(F32, "n") == array_of(F32, "n")
        assert wrap(array_of(F32, "m"), "n") == array_of(F32, "n", "m")
