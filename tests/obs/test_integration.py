"""The observability layer threaded through the stack: compiler passes,
parser, codegen, simulated kernel launches, tuner proposals, telemetry."""

import pytest

from repro import obs
from repro.bench.programs.matmul import matmul_program, matmul_sizes
from repro.codegen.opencl import generate_opencl
from repro.compiler import compile_program
from repro.gpu import K40
from repro.parser import parse_program
from repro.tuning import Autotuner


@pytest.fixture()
def tracer():
    with obs.tracing("test") as tr:
        yield tr


class TestCompilerSpans:
    def test_every_pass_gets_a_span(self, tracer):
        compile_program(matmul_program(), "incremental")
        names = {sp.name for sp in tracer.spans if sp.cat == "compiler"}
        assert {"compile", "pass.normalize", "pass.fuse", "pass.simplify",
                "pass.flatten", "pass.flatten+simplify"} <= names

    def test_pass_spans_record_node_deltas(self, tracer):
        compile_program(matmul_program(), "incremental")
        (fl,) = tracer.find("pass.flatten")
        assert fl.args["nodes_after"] > fl.args["nodes_before"] > 0

    def test_compile_span_wraps_passes(self, tracer):
        compile_program(matmul_program(), "moderate")
        (comp,) = tracer.find("compile")
        assert comp.args["mode"] == "moderate"
        (norm,) = tracer.find("pass.normalize")
        assert comp.ts <= norm.ts
        assert comp.ts + comp.dur >= norm.ts + norm.dur

    def test_parse_span(self, tracer):
        parse_program(
            "def sumsq(xss: [n][m]f32) =\n"
            "  map (\\row -> redomap (+) (\\x -> x * x) 0.0 row) xss\n"
        )
        (sp,) = tracer.find("pass.parse")
        assert sp.args["program"] == "sumsq"

    def test_codegen_span(self, tracer):
        cp = compile_program(matmul_program(), "incremental")
        code = generate_opencl(cp)
        (sp,) = tracer.find("pass.codegen")
        assert sp.args["kernels"] == code.num_kernels
        assert sp.args["loc"] == code.loc

    def test_no_spans_without_tracer(self):
        compile_program(matmul_program(), "incremental")
        assert obs.current() is None


class TestSimulatorSpans:
    def test_kernel_launch_spans(self, tracer):
        cp = compile_program(matmul_program(), "incremental")
        rep = cp.simulate(matmul_sizes(4, 20), K40, cache=False)
        launches = tracer.find("kernel.launch")
        assert launches
        assert sum(sp.args["kernels"] for sp in launches) == rep.num_kernels
        for sp in launches:
            assert sp.cat == "sim"
            assert sp.args["kind"].startswith("Seg")
            assert sp.args["sim_time_us"] >= 0

    def test_cached_launches_still_traced(self, tracer):
        cp = compile_program(matmul_program(), "incremental")
        cp.simulate(matmul_sizes(4, 20), K40)
        n = len(tracer.find("kernel.launch"))
        # memoized whole-program replay does not re-launch kernels, so
        # force a fresh walk: same kernels, now from the kernel cache
        cp.simulate(matmul_sizes(4, 20), K40, cache=False)
        assert len(tracer.find("kernel.launch")) == 2 * n


class TestTunerSpans:
    def _tune(self, n=12):
        cp = compile_program(matmul_program(), "incremental")
        tuner = Autotuner(cp, [matmul_sizes(4, 20)], K40, seed=0)
        return tuner.tune(max_proposals=n)

    def test_proposal_spans(self, tracer):
        res = self._tune(12)
        proposals = tracer.find("tuner.proposal")
        assert len(proposals) == res.proposals == 12
        assert [sp.args["proposal"] for sp in proposals] == list(range(1, 13))
        costs = [sp.args["cost"] for sp in proposals]
        assert costs == [c for _, c in res.full_history]
        assert any(sp.args["improved"] for sp in proposals)

    def test_tune_span_summarises_run(self, tracer):
        res = self._tune(8)
        (tsp,) = [sp for sp in tracer.find("tune") if sp.cat == "tuner"]
        assert tsp.args["proposals"] == 8
        assert tsp.args["simulations"] == res.simulations
        assert tsp.args["cache_hits"] == res.cache_hits

    def test_perf_timers_appear_as_spans(self, tracer):
        self._tune(6)
        cats = {sp.name for sp in tracer.spans if sp.cat == "perf"}
        assert "tune" in cats and "simulate" in cats


class TestTelemetry:
    def test_telemetry_document(self):
        cp = compile_program(matmul_program(), "incremental")
        datasets = [matmul_sizes(2, 20), matmul_sizes(8, 20)]
        tuner = Autotuner(cp, datasets, K40, seed=0)
        res = tuner.tune(max_proposals=20)
        doc = res.telemetry()
        assert doc["kind"] == "tuning-telemetry"
        assert doc["proposals"] == 20
        assert doc["best_curve"] == [[p, c] for p, c in res.history]
        assert len(doc["cost_curve"]) == 20
        # one trajectory entry per proposal, per threshold
        for name in res.best_thresholds:
            assert len(doc["threshold_trajectories"][name]) == 20
        # path counts: one dict per dataset, evaluations sum to proposals
        assert len(doc["path_counts"]) == 2
        for pc in doc["path_counts"]:
            assert sum(pc.values()) == 20
        assert doc["distinct_paths"] == [len(pc) for pc in doc["path_counts"]]

    def test_telemetry_is_json_serialisable(self):
        import json

        cp = compile_program(matmul_program(), "incremental")
        tuner = Autotuner(cp, [matmul_sizes(4, 20)], K40, seed=1)
        res = tuner.tune(max_proposals=5)
        json.dumps(res.telemetry())
