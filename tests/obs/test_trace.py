"""The span tracer core: nesting, thread safety, export, summary."""

import json
import threading

from repro import obs


class TestTracerCore:
    def test_span_records_name_cat_args(self):
        tr = obs.Tracer("t")
        with tr.span("work", cat="test", x=1) as sp:
            sp["y"] = 2
        (rec,) = tr.spans
        assert rec.name == "work" and rec.cat == "test"
        assert rec.args == {"x": 1, "y": 2}
        assert rec.dur >= 0.0

    def test_spans_nest_and_close_inner_first(self):
        tr = obs.Tracer("t")
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        names = [sp.name for sp in tr.spans]
        assert names == ["inner", "outer"]  # recording order = close order
        inner, outer = tr.spans
        assert outer.ts <= inner.ts
        assert outer.ts + outer.dur >= inner.ts + inner.dur

    def test_span_closes_on_exception(self):
        tr = obs.Tracer("t")
        try:
            with tr.span("boom"):
                raise ValueError
        except ValueError:
            pass
        assert tr.find("boom")

    def test_instant_events(self):
        tr = obs.Tracer("t")
        tr.instant("mark", cat="test", k=3)
        (ev,) = tr.instants
        assert ev.name == "mark" and ev.args == {"k": 3}

    def test_thread_safety(self):
        tr = obs.Tracer("t")

        def work():
            for _ in range(50):
                with tr.span("w"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tr.find("w")) == 200
        assert all(sp.dur >= 0 for sp in tr.spans)


class TestGlobalTracer:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        with obs.span("ignored") as sp:
            sp["dropped"] = 1  # must not raise
        assert sp is obs.NULL_SPAN

    def test_tracing_scope(self):
        with obs.tracing("scoped") as tr:
            assert obs.enabled() and obs.current() is tr
            with obs.span("inside", cat="test"):
                pass
            obs.instant("tick")
        assert not obs.enabled()
        assert tr.find("inside") and tr.instants

    def test_start_stop(self):
        tr = obs.start("manual")
        try:
            assert obs.current() is tr
        finally:
            assert obs.stop() is tr
        assert obs.current() is None


class TestChromeExport:
    def test_round_trips_through_json(self, tmp_path):
        with obs.tracing("export-test") as tr:
            with obs.span("alpha", cat="test", n=3):
                pass
            obs.instant("beta", cat="test")
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(tr, str(path))
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        meta = by_name["process_name"]
        assert meta["ph"] == "M" and meta["args"]["name"] == "export-test"
        alpha = by_name["alpha"]
        assert alpha["ph"] == "X" and alpha["dur"] >= 0
        assert alpha["args"] == {"n": 3}
        assert {"ts", "pid", "tid", "cat"} <= set(alpha)
        assert by_name["beta"]["ph"] == "i"

    def test_args_are_json_safe(self):
        tr = obs.Tracer("t")
        with tr.span("s", weird=object(), inf=float("inf"),
                     nested={"k": (1, 2)}):
            pass
        doc = obs.to_chrome(tr)
        text = json.dumps(doc)  # must not raise
        args = json.loads(text)["traceEvents"][-1]["args"]
        assert isinstance(args["weird"], str)
        assert args["inf"] == "inf"
        assert args["nested"] == {"k": [1, 2]}


class TestSummary:
    def test_aggregates_by_cat_and_name(self):
        tr = obs.Tracer("t")
        for _ in range(3):
            with tr.span("a", cat="x"):
                pass
        with tr.span("a", cat="y"):
            pass
        stats = {(s.cat, s.name): s for s in obs.aggregate(tr)}
        assert stats[("x", "a")].count == 3
        assert stats[("y", "a")].count == 1

    def test_render_contains_all_spans(self):
        tr = obs.Tracer("summary-test")
        with tr.span("alpha", cat="x"):
            pass
        text = obs.render_summary(tr)
        assert "summary-test" in text and "x/alpha" in text

    def test_render_empty(self):
        assert "no spans" in obs.render_summary(obs.Tracer("t"))
